//===- memory/BlockMemory.h - Shared block-table machinery ------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common implementation base for the two block-structured models (logical,
/// Section 2.2; quasi-concrete, Section 3.1). Both keep a table of blocks
/// indexed by BlockId and differ only in the cast operations and in whether
/// blocks can carry concrete base addresses.
///
/// Block 0 is the NULL block (Section 4): valid, size 1, and in the
/// quasi-concrete model pre-realized at concrete address 0. Loads and stores
/// through it are undefined behavior; freeing it is a no-op.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_BLOCKMEMORY_H
#define QCM_MEMORY_BLOCKMEMORY_H

#include "memory/Memory.h"

namespace qcm {

/// Base class implementing allocation, deallocation, load, and store over a
/// block table. Casts are left to the derived models.
class BlockMemory : public Memory {
public:
  Outcome<Value> allocate(Word NumWords) override;
  Outcome<Unit> deallocate(Value Pointer) override;
  Outcome<Value> load(Value Address) override;
  Outcome<Unit> store(Value Address, Value V) override;

  bool isValidAddress(const Ptr &Address) const override;

  std::vector<std::pair<BlockId, Block>> snapshot() const override;
  const Block *getBlock(BlockId Id) const override;

  /// Number of blocks ever allocated, including the NULL block.
  size_t numBlocks() const { return Blocks.size(); }

protected:
  /// \p NullBlockBase: the NULL block's concrete base (0 in the
  /// quasi-concrete model per Section 4; absent in the purely logical
  /// model, which has no concrete addresses at all).
  BlockMemory(MemoryConfig Config, std::optional<Word> NullBlockBase);

  /// Checks that \p Address designates a live, in-range, non-NULL-block
  /// cell; returns the faulting outcome to propagate otherwise.
  Outcome<Unit> checkAccess(const Ptr &Address) const;

  Block &blockRef(BlockId Id) { return Blocks[Id]; }
  const Block &blockRef(BlockId Id) const { return Blocks[Id]; }

  std::vector<Block> Blocks;
};

} // namespace qcm

#endif // QCM_MEMORY_BLOCKMEMORY_H
