//===- memory/BlockMemory.h - Shared block-table machinery ------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common implementation base for the two block-structured models (logical,
/// Section 2.2; quasi-concrete, Section 3.1). Both keep a table of blocks
/// indexed by BlockId and differ only in the cast operations and in whether
/// blocks can carry concrete base addresses.
///
/// Block 0 is the NULL block (Section 4): valid, size 1, and in the
/// quasi-concrete model pre-realized at concrete address 0. Loads and stores
/// through it are undefined behavior; freeing it is a no-op.
///
/// Storage layout: the table is a flat vector of fixed-size LiveBlock
/// records whose contents live as spans in a ValueSlab owned by the memory
/// instance — allocation is a bump-pointer increment and a load/store is
/// two indexed reads. The public Block type (memory/Block.h) remains the
/// uniform snapshot representation, materialized on demand.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_BLOCKMEMORY_H
#define QCM_MEMORY_BLOCKMEMORY_H

#include "memory/Memory.h"
#include "memory/ValueSlab.h"

namespace qcm {

/// Base class implementing allocation, deallocation, load, and store over a
/// block table. Casts are left to the derived models.
class BlockMemory : public Memory {
public:
  Outcome<Value> allocate(Word NumWords) override;
  Outcome<Unit> deallocate(Value Pointer) override;
  Outcome<Value> load(Value Address) override;
  Outcome<Unit> store(Value Address, Value V) override;

  bool isValidAddress(const Ptr &Address) const override;

  std::vector<std::pair<BlockId, Block>> snapshot() const override;
  std::optional<Block> getBlock(BlockId Id) const override;

  /// Number of blocks ever allocated, including the NULL block.
  size_t numBlocks() const { return Blocks.size(); }

protected:
  /// Live-block record. Freed blocks keep their span (snapshots observe
  /// freed contents, Section 5.3), so spans are never recycled; the slab
  /// reclaims them wholesale on reset.
  struct LiveBlock {
    Word Size = 0;
    /// Concrete base address; meaningful only when HasBase.
    Word Base = 0;
    bool HasBase = false;
    bool Valid = false;
    /// Span of Size values in the owning memory's slab (nullptr only for a
    /// moved-from record).
    Value *Data = nullptr;

    bool isConcrete() const { return HasBase; }
  };

  /// \p NullBlockBase: the NULL block's concrete base (0 in the
  /// quasi-concrete model per Section 4; absent in the purely logical
  /// model, which has no concrete addresses at all).
  BlockMemory(MemoryConfig Config, std::optional<Word> NullBlockBase);

  /// Fast accessibility check for the load/store hot path: the live block
  /// when \p Address designates a live, in-range, non-NULL-block cell,
  /// nullptr otherwise. Builds no Outcome and no message; callers report
  /// failures through accessFault().
  LiveBlock *accessibleBlock(const Ptr &Address) {
    if (Address.Block == 0 || Address.Block >= Blocks.size())
      return nullptr;
    LiveBlock &B = Blocks[Address.Block];
    if (!B.Valid || Address.Offset >= B.Size)
      return nullptr;
    return &B;
  }

  /// Cold path paired with accessibleBlock(): the fault explaining why
  /// \p Address is not accessible (identical diagnostics to the historical
  /// per-access check).
  Fault accessFault(const Ptr &Address) const;

  /// Hook invoked by deallocate() just before \p B is marked invalid, so
  /// derived models can unindex its concrete range.
  virtual void onFree(BlockId, const LiveBlock &) {}

  /// Materializes the uniform snapshot form of block \p Id.
  Block materialize(BlockId Id) const;

  /// Rewinds the table and slab to the freshly-constructed single-NULL-block
  /// state, keeping their capacity; the shared piece of the derived models'
  /// reset(). \p NullBlockBase as in the constructor.
  void resetBlocks(std::optional<Word> NullBlockBase);

  /// Deep-copies \p Other's table into this memory's slab (clone support).
  void copyBlocksFrom(const BlockMemory &Other);

  std::vector<LiveBlock> Blocks;
  ValueSlab Slab;

private:
  void installNullBlock(std::optional<Word> NullBlockBase);
};

} // namespace qcm

#endif // QCM_MEMORY_BLOCKMEMORY_H
