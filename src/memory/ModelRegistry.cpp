//===- memory/ModelRegistry.cpp -------------------------------------------===//

#include "memory/ModelRegistry.h"

#include "memory/ConcreteMemory.h"
#include "memory/QuasiConcreteMemory.h"
#include "memory/TwoPhaseMemory.h"

#include <algorithm>
#include <cassert>

using namespace qcm;

namespace {

std::unique_ptr<Memory> makeConcrete(ModelMakeConfig &&C) {
  return std::make_unique<ConcreteMemory>(C.MemCfg, std::move(C.Oracle));
}
void resetConcrete(Memory &M, ModelMakeConfig &&C) {
  static_cast<ConcreteMemory &>(M).reset(std::move(C.Oracle));
}

std::unique_ptr<Memory> makeLogical(ModelMakeConfig &&C) {
  return std::make_unique<LogicalMemory>(C.MemCfg, C.LogicalCasts);
}
void resetLogical(Memory &M, ModelMakeConfig &&C) {
  static_cast<LogicalMemory &>(M).reset(C.LogicalCasts);
}

std::unique_ptr<Memory> makeQuasi(ModelMakeConfig &&C) {
  return std::make_unique<QuasiConcreteMemory>(C.MemCfg, std::move(C.Oracle));
}
void resetQuasi(Memory &M, ModelMakeConfig &&C) {
  static_cast<QuasiConcreteMemory &>(M).reset(std::move(C.Oracle));
}

std::unique_ptr<Memory> makeEager(ModelMakeConfig &&C) {
  return std::make_unique<EagerQuasiMemory>(C.MemCfg, std::move(C.Kinds),
                                            std::move(C.Oracle));
}
void resetEager(Memory &M, ModelMakeConfig &&C) {
  static_cast<EagerQuasiMemory &>(M).reset(std::move(C.Kinds),
                                           std::move(C.Oracle));
}

std::unique_ptr<Memory> makeTwoPhase(ModelMakeConfig &&C) {
  return std::make_unique<TwoPhaseMemory>(C.MemCfg, std::move(C.Oracle));
}
void resetTwoPhase(Memory &M, ModelMakeConfig &&C) {
  static_cast<TwoPhaseMemory &>(M).reset(std::move(C.Oracle));
}

/// The one place model identity is enumerated. std::array pins the row
/// count to NumModelKinds at compile time; the Kind-equals-index invariant
/// is asserted in modelRegistry() and unit-tested.
const std::array<ModelDescriptor, NumModelKinds> Table = {{
    {ModelKind::Concrete,
     /*ProseName=*/"concrete",
     /*ShortName=*/"concrete",
     /*Alias=*/nullptr,
     /*ValuesFullyConcrete=*/true,
     /*HasRealization=*/false,
     /*FiniteSpace=*/true,
     /*UncastAllocationsStayLogical=*/false,
     /*InjectAllocation=*/true,
     /*InjectCast=*/false, makeConcrete, resetConcrete},
    {ModelKind::Logical,
     /*ProseName=*/"logical",
     /*ShortName=*/"logical",
     /*Alias=*/nullptr,
     /*ValuesFullyConcrete=*/false,
     /*HasRealization=*/false,
     /*FiniteSpace=*/false,
     /*UncastAllocationsStayLogical=*/true,
     /*InjectAllocation=*/false,
     /*InjectCast=*/false, makeLogical, resetLogical},
    {ModelKind::QuasiConcrete,
     /*ProseName=*/"quasi-concrete",
     /*ShortName=*/"quasi",
     /*Alias=*/"quasi-concrete",
     /*ValuesFullyConcrete=*/false,
     /*HasRealization=*/true,
     /*FiniteSpace=*/true,
     /*UncastAllocationsStayLogical=*/true,
     /*InjectAllocation=*/false,
     /*InjectCast=*/true, makeQuasi, resetQuasi},
    {ModelKind::EagerQuasi,
     /*ProseName=*/"eager-quasi (rejected 3.4 design)",
     /*ShortName=*/"eager",
     /*Alias=*/"eager-quasi",
     /*ValuesFullyConcrete=*/false,
     /*HasRealization=*/false,
     /*FiniteSpace=*/true,
     /*UncastAllocationsStayLogical=*/true,
     /*InjectAllocation=*/true,
     /*InjectCast=*/true, makeEager, resetEager},
    {ModelKind::TwoPhase,
     /*ProseName=*/"two-phase",
     /*ShortName=*/"twophase",
     /*Alias=*/"two-phase",
     /*ValuesFullyConcrete=*/false,
     /*HasRealization=*/true,
     /*FiniteSpace=*/true,
     // The transition concretizes even never-cast blocks, so a dead
     // allocation is observable once any cast happens: the logical-family
     // ownership claims do not extend to this model.
     /*UncastAllocationsStayLogical=*/false,
     /*InjectAllocation=*/true,
     /*InjectCast=*/true, makeTwoPhase, resetTwoPhase},
}};

/// Levenshtein distance, capped in practice by the caller's threshold.
/// (Duplicated from the pass registry on purpose: memory/ sits below opt/.)
size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Prev = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Cur = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1,
                         Prev + (A[I - 1] == B[J - 1] ? 0 : 1)});
      Prev = Cur;
    }
  }
  return Row[B.size()];
}

} // namespace

const std::array<ModelDescriptor, NumModelKinds> &qcm::modelRegistry() {
#ifndef NDEBUG
  for (size_t I = 0; I < Table.size(); ++I)
    assert(static_cast<size_t>(Table[I].Kind) == I &&
           "registry row out of ModelKind order");
#endif
  return Table;
}

const ModelDescriptor &qcm::modelDescriptor(ModelKind Kind) {
  return modelRegistry()[static_cast<size_t>(Kind)];
}

const std::array<ModelKind, NumModelKinds> &qcm::allModelKinds() {
  static const std::array<ModelKind, NumModelKinds> Kinds = [] {
    std::array<ModelKind, NumModelKinds> K{};
    for (size_t I = 0; I < NumModelKinds; ++I)
      K[I] = modelRegistry()[I].Kind;
    return K;
  }();
  return Kinds;
}

std::optional<ModelKind> qcm::parseModelName(const std::string &Name) {
  for (const ModelDescriptor &D : modelRegistry()) {
    if (Name == D.ShortName)
      return D.Kind;
    if (D.Alias && Name == D.Alias)
      return D.Kind;
  }
  return std::nullopt;
}

std::vector<std::string> qcm::suggestModelNames(const std::string &Name) {
  std::vector<std::pair<size_t, std::string>> Scored;
  for (const ModelDescriptor &D : modelRegistry()) {
    for (const char *Spelling : {D.ShortName, D.Alias}) {
      if (!Spelling)
        continue;
      size_t Dist = editDistance(Name, Spelling);
      if (Dist <= 2)
        Scored.emplace_back(Dist, Spelling);
    }
  }
  std::stable_sort(Scored.begin(), Scored.end(),
                   [](const auto &A, const auto &B) {
                     return A.first < B.first;
                   });
  std::vector<std::string> Out;
  for (auto &[Dist, Spelling] : Scored)
    if (std::find(Out.begin(), Out.end(), Spelling) == Out.end())
      Out.push_back(Spelling);
  return Out;
}

std::string qcm::allModelShortNames() {
  std::string Out;
  for (const ModelDescriptor &D : modelRegistry()) {
    if (!Out.empty())
      Out += ", ";
    Out += D.ShortName;
  }
  return Out;
}

std::string qcm::modelKindName(ModelKind Kind) {
  size_t I = static_cast<size_t>(Kind);
  if (I >= NumModelKinds)
    return "unknown";
  return modelRegistry()[I].ProseName;
}
