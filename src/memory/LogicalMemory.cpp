//===- memory/LogicalMemory.cpp -------------------------------------------===//

#include "memory/LogicalMemory.h"

using namespace qcm;

LogicalMemory::LogicalMemory(MemoryConfig Config, CastBehavior Casts)
    : BlockMemory(Config, /*NullBlockBase=*/std::nullopt), Casts(Casts) {}

void LogicalMemory::reset(std::optional<CastBehavior> NewCasts) {
  resetBlocks(/*NullBlockBase=*/std::nullopt);
  if (NewCasts)
    Casts = *NewCasts;
}

Outcome<Value> LogicalMemory::castPtrToInt(Value Pointer) {
  if (Casts == CastBehavior::Error)
    return Outcome<Value>::undefined(
        "pointer-to-integer cast in the logical model");
  // CompCert-style: the cast is a no-op and the logical address itself flows
  // into the integer position (Section 2.2). Never a realization: the
  // logical model has no concrete addresses at all.
  if (Pointer.isPtr())
    Trace.noteCastToInt(Pointer.ptr().Block, Pointer.ptr().Offset,
                        std::nullopt, /*RealizedNow=*/false);
  else
    Trace.noteCastToInt(std::nullopt, std::nullopt, Pointer.intValue(),
                        /*RealizedNow=*/false);
  return Outcome<Value>::success(Pointer);
}

Outcome<Value> LogicalMemory::castIntToPtr(Value Integer) {
  if (Casts == CastBehavior::Error)
    return Outcome<Value>::undefined(
        "integer-to-pointer cast in the logical model");
  if (Integer.isPtr())
    Trace.noteCastToPtr(Integer.ptr().Block, Integer.ptr().Offset,
                        std::nullopt);
  else
    Trace.noteCastToPtr(std::nullopt, std::nullopt, Integer.intValue());
  return Outcome<Value>::success(Integer);
}

std::unique_ptr<Memory> LogicalMemory::clone() const {
  auto Copy = std::make_unique<LogicalMemory>(config(), Casts);
  Copy->copyBlocksFrom(*this);
  return Copy;
}

std::optional<std::string> LogicalMemory::checkConsistency() const {
  if (Blocks.empty() || !Blocks[0].Valid || Blocks[0].Size != 1)
    return "NULL block is damaged";
  for (BlockId Id = 0; Id < Blocks.size(); ++Id) {
    const LiveBlock &B = Blocks[Id];
    if (Id != 0 && B.HasBase)
      return "logical model block " + std::to_string(Id) +
             " has a concrete base";
    if (B.Valid && !B.Data)
      return "block " + std::to_string(Id) + " has no contents storage";
  }
  return std::nullopt;
}
