//===- memory/QuasiConcreteMemory.cpp -------------------------------------===//

#include "memory/QuasiConcreteMemory.h"

using namespace qcm;

QuasiConcreteMemory::QuasiConcreteMemory(
    MemoryConfig Config, std::unique_ptr<PlacementOracle> Oracle)
    : BlockMemory(Config, /*NullBlockBase=*/0), Oracle(std::move(Oracle)) {
  if (!this->Oracle)
    this->Oracle = std::make_unique<FirstFitOracle>();
}

std::map<Word, Word> QuasiConcreteMemory::occupiedRanges() const {
  std::map<Word, Word> Ranges;
  for (BlockId Id = 1; Id < Blocks.size(); ++Id) {
    const Block &B = Blocks[Id];
    if (B.Valid && B.Base)
      Ranges.emplace(*B.Base, B.Size);
  }
  return Ranges;
}

bool QuasiConcreteMemory::isRealized(BlockId Id) const {
  return Id < Blocks.size() && Blocks[Id].Base.has_value();
}

size_t QuasiConcreteMemory::numRealizedBlocks() const {
  size_t Count = 0;
  for (BlockId Id = 1; Id < Blocks.size(); ++Id)
    if (Blocks[Id].Valid && Blocks[Id].Base)
      ++Count;
  return Count;
}

Outcome<Unit> QuasiConcreteMemory::realize(BlockId Id) {
  if (Id == 0 || Id >= Blocks.size())
    return Outcome<Unit>::undefined("realization of a nonexistent block");
  Block &B = Blocks[Id];
  if (B.Base)
    return Outcome<Unit>::success(Unit{}); // Already concrete; idempotent.
  if (!B.Valid)
    return Outcome<Unit>::undefined("realization of a freed block");
  std::vector<FreeInterval> Free =
      computeFreeIntervals(occupiedRanges(), config().AddressWords);
  std::optional<Word> Base = Oracle->choose(B.Size, Free);
  if (!Base) {
    Trace.noteRealizeFailure(Id, B.Size);
    return Outcome<Unit>::outOfMemory(
        "no concrete placement realizing block " + std::to_string(Id) +
        " of " + wordToString(B.Size) + " words");
  }
  B.Base = *Base;
  Trace.noteRealize(Id, B.Size, *Base);
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> QuasiConcreteMemory::castPtrToInt(Value Pointer) {
  if (!Pointer.isPtr())
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an integer value");
  const Ptr &P = Pointer.ptr();
  if (P.Block >= Blocks.size())
    return Outcome<Value>::undefined("cast of a nonexistent block");
  // cast2int first realizes l, then reifies (l, i) if valid (Section 4).
  // Realizing a freed block is pointless — validity will fail — so we check
  // validity first; the NULL block is pre-realized at address 0, making
  // (int)NULL == 0 fall out of the general rule.
  if (!isValidAddress(P))
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an invalid address " + P.toString());
  bool RealizedNow = !isRealized(P.Block);
  if (P.Block != 0)
    if (Outcome<Unit> Realized = realize(P.Block); !Realized)
      return Realized.propagate<Value>();
  const Block &B = Blocks[P.Block];
  Word Addr = wrapAdd(*B.Base, P.Offset);
  Trace.noteCastToInt(P.Block, P.Offset, Addr, RealizedNow);
  return Outcome<Value>::success(Value::makeInt(Addr));
}

Outcome<Value> QuasiConcreteMemory::castIntToPtr(Value Integer) {
  if (!Integer.isInt())
    return Outcome<Value>::undefined(
        "integer-to-pointer cast of a logical address");
  Word I = Integer.intValue();
  // cast2ptr(i) = (l, j) if valid_m(l, j) and (l, j)|down| = i. Valid
  // realized ranges are disjoint, so the preimage is unique; the NULL block
  // supplies the preimage of 0.
  for (BlockId Id = 0; Id < Blocks.size(); ++Id) {
    const Block &B = Blocks[Id];
    if (!B.Valid || !B.Base)
      continue;
    if (B.containsAddress(I)) {
      Trace.noteCastToPtr(Id, I - *B.Base, I);
      return Outcome<Value>::success(Value::makePtr(Id, I - *B.Base));
    }
  }
  return Outcome<Value>::undefined(
      "integer-to-pointer cast of " + wordToString(I) +
      " which reifies no valid address");
}

std::unique_ptr<Memory> QuasiConcreteMemory::clone() const {
  auto Copy =
      std::make_unique<QuasiConcreteMemory>(config(), Oracle->clone());
  Copy->Blocks = Blocks;
  return Copy;
}

std::optional<std::string> QuasiConcreteMemory::checkConsistency() const {
  if (Blocks.empty() || !Blocks[0].Valid || Blocks[0].Size != 1 ||
      !Blocks[0].Base || *Blocks[0].Base != 0)
    return "NULL block is damaged";
  const uint64_t Limit = config().AddressWords - 1;
  uint64_t PrevEnd = 0;
  bool First = true;
  for (const auto &[Base, Size] : occupiedRanges()) {
    if (Base == 0)
      return "realized block includes address 0";
    uint64_t End = static_cast<uint64_t>(Base) + Size;
    if (End > Limit)
      return "realized block includes the maximum address";
    if (!First && Base < PrevEnd)
      return "realized blocks overlap at " + wordToString(Base);
    PrevEnd = End;
    First = false;
  }
  for (BlockId Id = 0; Id < Blocks.size(); ++Id) {
    const Block &B = Blocks[Id];
    if (B.Valid && B.Contents.size() != B.Size)
      return "block " + std::to_string(Id) + " contents size mismatch";
  }
  return std::nullopt;
}
