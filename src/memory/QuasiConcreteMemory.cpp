//===- memory/QuasiConcreteMemory.cpp -------------------------------------===//

#include "memory/QuasiConcreteMemory.h"

using namespace qcm;

QuasiConcreteMemory::QuasiConcreteMemory(
    MemoryConfig Config, std::unique_ptr<PlacementOracle> Oracle)
    : BlockMemory(Config, /*NullBlockBase=*/0), Oracle(std::move(Oracle)) {
  if (!this->Oracle)
    this->Oracle = std::make_unique<FirstFitOracle>();
}

void QuasiConcreteMemory::reset(std::unique_ptr<PlacementOracle> NewOracle) {
  resetBlocks(/*NullBlockBase=*/0);
  Index.clear();
  if (NewOracle)
    Oracle = std::move(NewOracle);
  else
    Oracle->reset();
}

bool QuasiConcreteMemory::isRealized(BlockId Id) const {
  return Id < Blocks.size() && Blocks[Id].HasBase;
}

void QuasiConcreteMemory::onFree(BlockId Id, const LiveBlock &B) {
  if (Id != 0 && B.HasBase)
    Index.erase(B.Base);
}

Outcome<Unit> QuasiConcreteMemory::realize(BlockId Id) {
  if (Id == 0 || Id >= Blocks.size())
    return Outcome<Unit>::undefined("realization of a nonexistent block");
  LiveBlock &B = Blocks[Id];
  if (B.HasBase)
    return Outcome<Unit>::success(Unit{}); // Already concrete; idempotent.
  if (!B.Valid)
    return Outcome<Unit>::undefined("realization of a freed block");
  std::vector<FreeInterval> Free =
      Index.freeIntervals(config().AddressWords);
  std::optional<Word> Base = Oracle->choose(B.Size, Free);
  if (!Base) {
    Trace.noteRealizeFailure(Id, B.Size);
    return Outcome<Unit>::outOfMemory(
        "no concrete placement realizing block " + std::to_string(Id) +
        " of " + wordToString(B.Size) + " words");
  }
  B.Base = *Base;
  B.HasBase = true;
  Index.insert(*Base, B.Size, Id);
  Trace.noteRealize(Id, B.Size, *Base);
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> QuasiConcreteMemory::castPtrToInt(Value Pointer) {
  if (!Pointer.isPtr())
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an integer value");
  const Ptr P = Pointer.ptr();
  if (P.Block >= Blocks.size())
    return Outcome<Value>::undefined("cast of a nonexistent block");
  // cast2int first realizes l, then reifies (l, i) if valid (Section 4).
  // Realizing a freed block is pointless — validity will fail — so we check
  // validity first; the NULL block is pre-realized at address 0, making
  // (int)NULL == 0 fall out of the general rule.
  if (!isValidAddress(P))
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an invalid address " + P.toString());
  bool RealizedNow = !isRealized(P.Block);
  if (P.Block != 0)
    if (Outcome<Unit> Realized = realize(P.Block); !Realized)
      return Realized.propagate<Value>();
  const LiveBlock &B = Blocks[P.Block];
  Word Addr = wrapAdd(B.Base, P.Offset);
  Trace.noteCastToInt(P.Block, P.Offset, Addr, RealizedNow);
  return Outcome<Value>::success(Value::makeInt(Addr));
}

Outcome<Value> QuasiConcreteMemory::castIntToPtr(Value Integer) {
  if (!Integer.isInt())
    return Outcome<Value>::undefined(
        "integer-to-pointer cast of a logical address");
  Word I = Integer.intValue();
  // cast2ptr(i) = (l, j) if valid_m(l, j) and (l, j)|down| = i. Valid
  // realized ranges are disjoint, so the preimage is unique. The NULL
  // block — pre-realized at [0, 1) and never indexed — supplies the
  // preimage of 0; every other preimage is an index lookup.
  if (I == 0) {
    Trace.noteCastToPtr(0, 0, 0);
    return Outcome<Value>::success(Value::makePtr(0, 0));
  }
  if (const AddressIndex::Entry *E = Index.find(I)) {
    Trace.noteCastToPtr(E->Id, I - E->Base, I);
    return Outcome<Value>::success(Value::makePtr(E->Id, I - E->Base));
  }
  return Outcome<Value>::undefined(
      "integer-to-pointer cast of " + wordToString(I) +
      " which reifies no valid address");
}

std::unique_ptr<Memory> QuasiConcreteMemory::clone() const {
  auto Copy =
      std::make_unique<QuasiConcreteMemory>(config(), Oracle->clone());
  Copy->copyBlocksFrom(*this);
  Copy->Index = Index;
  return Copy;
}

std::optional<std::string> QuasiConcreteMemory::checkConsistency() const {
  if (Blocks.empty() || !Blocks[0].Valid || Blocks[0].Size != 1 ||
      !Blocks[0].HasBase || Blocks[0].Base != 0)
    return "NULL block is damaged";
  const uint64_t Limit = config().AddressWords - 1;
  uint64_t PrevEnd = 0;
  bool First = true;
  for (const AddressIndex::Entry &E : Index.entries()) {
    if (E.Base == 0)
      return "realized block includes address 0";
    uint64_t End = static_cast<uint64_t>(E.Base) + E.Size;
    if (End > Limit)
      return "realized block includes the maximum address";
    if (!First && E.Base < PrevEnd)
      return "realized blocks overlap at " + wordToString(E.Base);
    PrevEnd = End;
    First = false;
    // The index must mirror the block table exactly.
    if (E.Id >= Blocks.size())
      return "index entry for nonexistent block " + std::to_string(E.Id);
    const LiveBlock &B = Blocks[E.Id];
    if (!B.Valid || !B.HasBase || B.Base != E.Base || B.Size != E.Size)
      return "index entry disagrees with block " + std::to_string(E.Id);
  }
  size_t RealizedValid = 0;
  for (BlockId Id = 1; Id < Blocks.size(); ++Id) {
    const LiveBlock &B = Blocks[Id];
    if (B.Valid && !B.Data)
      return "block " + std::to_string(Id) + " has no contents storage";
    if (B.Valid && B.HasBase)
      ++RealizedValid;
  }
  if (RealizedValid != Index.size())
    return "address index is missing realized blocks";
  return std::nullopt;
}
