//===- memory/AddressIndex.cpp --------------------------------------------===//

#include "memory/AddressIndex.h"

#include <algorithm>
#include <cassert>

using namespace qcm;

namespace {

bool baseLess(const AddressIndex::Entry &E, Word Base) {
  return E.Base < Base;
}

} // namespace

void AddressIndex::insert(Word Base, Word Size, BlockId Id) {
  assert(Size > 0 && "indexed ranges are nonempty");
  auto It = std::lower_bound(Entries.begin(), Entries.end(), Base, baseLess);
  assert((It == Entries.end() || It->Base != Base) &&
         "duplicate base in the address index");
  Entries.insert(It, Entry{Base, Size, Id});
}

void AddressIndex::erase(Word Base) {
  auto It = std::lower_bound(Entries.begin(), Entries.end(), Base, baseLess);
  if (It != Entries.end() && It->Base == Base)
    Entries.erase(It);
}

const AddressIndex::Entry *AddressIndex::find(Word Address) const {
  // The containing entry, if any, is the one with the greatest base
  // <= Address; disjointness makes it unique.
  auto It =
      std::upper_bound(Entries.begin(), Entries.end(), Address,
                       [](Word A, const Entry &E) { return A < E.Base; });
  if (It == Entries.begin())
    return nullptr;
  --It;
  return It->contains(Address) ? &*It : nullptr;
}

std::vector<FreeInterval>
AddressIndex::freeIntervals(uint64_t AddressWords) const {
  return computeFreeIntervalsSorted(Entries, AddressWords);
}
