//===- memory/QuasiConcreteMemory.h - The paper's model ---------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quasi-concrete memory model — the paper's contribution (Sections 3
/// and 4). Blocks are allocated logical and are *realized* to a concrete
/// base address the first time a pointer into them is cast to an integer:
///
///   (l, i) |down| m      = p + i   if m(l) = (v, p, n, c), p defined
///   valid_m(l, i)        iff m(l) = (v, p, n, c), v = true, 0 <= i < n
///   cast2int_m(l, i)     = (l, i) |down| m  if valid_m(l, i)
///                          {after realizing l}; otherwise UB
///   cast2ptr_m(i)        = (l, j)  if valid_m(l, j) and (l, j) |down| m = i;
///                          otherwise UB
///
/// Realization consults a PlacementOracle; when no placement exists the cast
/// is out-of-memory, i.e. "no behavior" (Section 3.4). Valid realized blocks
/// must occupy disjoint ranges avoiding address 0 and the maximum address
/// (Section 3.1), which makes cast2ptr's preimage unique — and lets an
/// AddressIndex answer it by binary search instead of scanning the table.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_QUASICONCRETEMEMORY_H
#define QCM_MEMORY_QUASICONCRETEMEMORY_H

#include "memory/AddressIndex.h"
#include "memory/BlockMemory.h"
#include "memory/Placement.h"

namespace qcm {

/// The quasi-concrete model.
class QuasiConcreteMemory : public BlockMemory {
public:
  /// Creates a quasi-concrete memory. \p Oracle decides realization
  /// placement; the default is first-fit.
  explicit QuasiConcreteMemory(
      MemoryConfig Config, std::unique_ptr<PlacementOracle> Oracle = nullptr);

  ModelKind kind() const override { return ModelKind::QuasiConcrete; }

  Outcome<Value> castPtrToInt(Value Pointer) override;
  Outcome<Value> castIntToPtr(Value Integer) override;

  std::unique_ptr<Memory> clone() const override;
  std::optional<std::string> checkConsistency() const override;

  /// Reset-and-reuse: returns to the freshly-constructed state (one NULL
  /// block, empty index, zeroed statistics) keeping storage capacity.
  /// \p Oracle replaces the placement oracle; passing nullptr keeps the
  /// current oracle and rewinds it to its initial decision stream.
  void reset(std::unique_ptr<PlacementOracle> Oracle = nullptr);

  /// Realizes block \p Id if it is still logical: assigns it a concrete base
  /// address disjoint from every other valid realized block. Fails with
  /// out-of-memory when the oracle finds no placement. Exposed for tests
  /// and for the lowering compiler; cast2int calls this internally.
  Outcome<Unit> realize(BlockId Id);

  /// True if block \p Id has a concrete base address.
  bool isRealized(BlockId Id) const;

  /// Number of valid realized blocks, excluding the NULL block.
  size_t numRealizedBlocks() const { return Index.size(); }

protected:
  void onFree(BlockId Id, const LiveBlock &B) override;

private:
  std::unique_ptr<PlacementOracle> Oracle;
  /// Valid realized blocks by concrete range (NULL block excluded; its
  /// range [0, 1) lies outside the usable space).
  AddressIndex Index;
};

} // namespace qcm

#endif // QCM_MEMORY_QUASICONCRETEMEMORY_H
