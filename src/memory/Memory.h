//===- memory/Memory.h - Abstract memory model interface --------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface of the three memory models. The interpreter
/// (semantics/Interp.h) is written entirely against this interface, so the
/// same language runs under the concrete model of Section 2.1, the
/// CompCert-style logical model of Section 2.2, and the quasi-concrete model
/// of Sections 3-4.
///
/// Every operation returns an Outcome, whose fault channel distinguishes the
/// paper's two failure classes: undefined behavior and out-of-memory ("no
/// behavior", Section 2.3).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_MEMORY_H
#define QCM_MEMORY_MEMORY_H

#include "memory/Block.h"
#include "memory/MemTrace.h"
#include "memory/Value.h"
#include "support/Fault.h"

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace qcm {

/// Which memory model a Memory instance implements. Adding a kind requires
/// a matching descriptor in memory/ModelRegistry.cpp — the registry's
/// static_assert on NumModelKinds makes forgetting one a compile error.
enum class ModelKind {
  /// Section 2.1: flat finite array, pointers are integers.
  Concrete,
  /// Section 2.2: CompCert-style infinite logical blocks.
  Logical,
  /// Sections 3-4: logical blocks realized to concrete addresses at
  /// pointer-to-integer cast time.
  QuasiConcrete,
  /// The rejected Section 3.4 alternative (ablation): blocks are
  /// nondeterministically concrete or logical from birth; casts of logical
  /// blocks have no behavior.
  EagerQuasi,
  /// The two-phase infinite/finite successor model (Beck et al., arXiv
  /// 2404.16143): allocation is infinite and logical until the first
  /// pointer-to-integer cast, which concretizes *every* live block into
  /// the finite address space at once; from then on allocation itself is
  /// finite and can exhaust.
  TwoPhase,
};

/// The prose name ("concrete", "quasi-concrete", ...). Defined by the model
/// registry (memory/ModelRegistry.cpp); declared here so the core headers
/// need not pull the registry in.
std::string modelKindName(ModelKind Kind);

/// Configuration shared by all models.
struct MemoryConfig {
  /// Number of addressable words. The usable space for concrete ranges is
  /// [1, AddressWords - 1): the paper excludes address 0 and the maximum
  /// address (Section 2.1). Defaults to the paper's 32-bit space; tests use
  /// small spaces to make placement enumeration exhaustive.
  uint64_t AddressWords = 1ull << 32;
};

/// Abstract memory model.
///
/// The value-level contract mirrors the paper: in the concrete model,
/// pointers are integer values, so allocate() returns an integer and
/// load()/store()/deallocate() take integers; in the logical and
/// quasi-concrete models those operations traffic in logical addresses.
/// Passing the wrong kind of value is undefined behavior, not a C++ error.
class Memory {
public:
  explicit Memory(MemoryConfig Config) : Config(Config) {}
  virtual ~Memory();

  virtual ModelKind kind() const = 0;
  const MemoryConfig &config() const { return Config; }

  /// malloc: allocates a fresh block of \p NumWords words and returns a
  /// pointer to it. NumWords must be nonzero (the paper requires allocated
  /// ranges to be nonempty); zero is undefined behavior. The concrete model
  /// can fail with out-of-memory; the logical-family models cannot.
  virtual Outcome<Value> allocate(Word NumWords) = 0;

  /// free: deallocates the block \p Pointer points at. Freeing NULL is a
  /// no-op (Section 4); freeing anything other than the start of a live
  /// allocation is undefined behavior.
  virtual Outcome<Unit> deallocate(Value Pointer) = 0;

  /// Loads the word at \p Address.
  virtual Outcome<Value> load(Value Address) = 0;

  /// Stores \p V at \p Address.
  virtual Outcome<Unit> store(Value Address, Value V) = 0;

  /// (int)p — Section 4 cast2int. In the quasi-concrete model this realizes
  /// the pointed-to block (the effectful step at the heart of the paper) and
  /// can therefore run out of concrete address space.
  virtual Outcome<Value> castPtrToInt(Value Pointer) = 0;

  /// (ptr)i — Section 4 cast2ptr.
  virtual Outcome<Value> castIntToPtr(Value Integer) = 0;

  /// The valid_m predicate of Section 4: (l, i) lies inside a valid block.
  /// Always false in the concrete model, whose values carry no block ids.
  virtual bool isValidAddress(const Ptr &Address) const = 0;

  /// Uniform introspection: all blocks ever created, as (id, block) pairs in
  /// increasing id order. The concrete model synthesizes ids in allocation
  /// order. Used by the refinement/simulation machinery and by tests; not
  /// part of the modeled semantics.
  virtual std::vector<std::pair<BlockId, Block>> snapshot() const = 0;

  /// One block's current state, if this model tracks blocks by identifier
  /// (logical-family models). Returns nullopt for ids never allocated and
  /// for the concrete model. Materialized by value: live contents sit in
  /// the model's slab, not in per-block vectors.
  virtual std::optional<Block> getBlock(BlockId Id) const;

  /// Deep copy, including oracle state.
  virtual std::unique_ptr<Memory> clone() const = 0;

  /// Verifies the model's internal consistency invariants (Section 2.1 for
  /// allocated ranges, Section 3.1 for realized blocks). Returns a
  /// description of the first violation, or nullopt if consistent. Intended
  /// for tests and debugging.
  virtual std::optional<std::string> checkConsistency() const = 0;

  /// The observability layer: per-instance event trace and aggregate
  /// statistics (memory/MemTrace.h). Every model emits into it; the
  /// interpreter binds its step counter; tools install sinks. clone()d
  /// memories start with a fresh, sink-less trace. Virtual so decorators
  /// (memory/FaultInjection.h) can expose the wrapped model's trace; the
  /// models themselves touch their own Trace member directly, so the hot
  /// emission paths pay nothing for the indirection.
  virtual MemTrace &trace() { return Trace; }
  virtual const MemTrace &trace() const { return Trace; }

  /// The model a decorator wraps; the undecorated models return themselves.
  /// Lets the reset-and-reuse protocol reach the typed reset() of the
  /// concrete model class through any number of wrappers.
  virtual Memory *underlying() { return this; }

private:
  MemoryConfig Config;

protected:
  /// Shared plumbing for the models' typed reset(...) methods (the
  /// reset-and-reuse protocol): clears aggregate statistics. The sink and
  /// step-counter binding are per-run concerns re-established by whoever
  /// drives the reused memory (semantics/Runner.h's ExecState).
  void resetTraceForReuse() { Trace.resetStats(); }

  MemTrace Trace;
};

} // namespace qcm

#endif // QCM_MEMORY_MEMORY_H
