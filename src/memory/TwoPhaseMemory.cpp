//===- memory/TwoPhaseMemory.cpp ------------------------------------------===//

#include "memory/TwoPhaseMemory.h"

#include <algorithm>

using namespace qcm;

TwoPhaseMemory::TwoPhaseMemory(MemoryConfig Config,
                               std::unique_ptr<PlacementOracle> Oracle)
    : BlockMemory(Config, /*NullBlockBase=*/0), Oracle(std::move(Oracle)) {
  if (!this->Oracle)
    this->Oracle = std::make_unique<FirstFitOracle>();
}

void TwoPhaseMemory::reset(std::unique_ptr<PlacementOracle> NewOracle) {
  resetBlocks(/*NullBlockBase=*/0);
  Index.clear();
  FinitePhase = false;
  if (NewOracle)
    Oracle = std::move(NewOracle);
  else
    Oracle->reset();
}

void TwoPhaseMemory::onFree(BlockId Id, const LiveBlock &B) {
  if (Id != 0 && B.HasBase)
    Index.erase(B.Base);
}

Outcome<Value> TwoPhaseMemory::allocate(Word NumWords) {
  // Phase 1: the infinite regime — plain logical allocation, no concrete
  // footprint, no way to fail (beyond the zero-size UB rule).
  if (!FinitePhase)
    return BlockMemory::allocate(NumWords);
  // Phase 2: the finite regime — allocation claims a concrete range at
  // birth, exactly like an eagerly-concrete block, and can exhaust.
  if (NumWords == 0)
    return Outcome<Value>::undefined("malloc of zero words");
  std::vector<FreeInterval> Free = Index.freeIntervals(config().AddressWords);
  std::optional<Word> Base = Oracle->choose(NumWords, Free);
  if (!Base) {
    Trace.noteAllocFailure(NumWords);
    return Outcome<Value>::outOfMemory(
        "no concrete placement for a finite-phase allocation of " +
        wordToString(NumWords) + " words");
  }
  LiveBlock B;
  B.Valid = true;
  B.Size = NumWords;
  B.HasBase = true;
  B.Base = *Base;
  B.Data = Slab.allocate(NumWords);
  std::fill(B.Data, B.Data + NumWords, Value::makeInt(0));
  BlockId Id = static_cast<BlockId>(Blocks.size());
  Blocks.push_back(B);
  Index.insert(*Base, NumWords, Id);
  Trace.noteAlloc(Id, NumWords, Base);
  return Outcome<Value>::success(Value::makePtr(Id, 0));
}

Outcome<Unit> TwoPhaseMemory::enterFinitePhase() {
  FinitePhase = true;
  // Concretize the whole live memory in allocation order. A failure is
  // out-of-memory ("no behavior"); the run stops there, so the partially
  // concretized state is never observed by a continuing execution.
  for (BlockId Id = 1; Id < Blocks.size(); ++Id) {
    LiveBlock &B = Blocks[Id];
    if (!B.Valid || B.HasBase)
      continue;
    std::vector<FreeInterval> Free =
        Index.freeIntervals(config().AddressWords);
    std::optional<Word> Base = Oracle->choose(B.Size, Free);
    if (!Base) {
      Trace.noteRealizeFailure(Id, B.Size);
      return Outcome<Unit>::outOfMemory(
          "no concrete placement concretizing block " + std::to_string(Id) +
          " of " + wordToString(B.Size) +
          " words at the phase transition");
    }
    B.Base = *Base;
    B.HasBase = true;
    Index.insert(*Base, B.Size, Id);
    Trace.noteRealize(Id, B.Size, *Base);
  }
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> TwoPhaseMemory::castPtrToInt(Value Pointer) {
  if (!Pointer.isPtr())
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an integer value");
  const Ptr P = Pointer.ptr();
  if (P.Block >= Blocks.size())
    return Outcome<Value>::undefined("cast of a nonexistent block");
  // Validity first, as in the quasi-concrete model: casting a freed or
  // out-of-range pointer is UB and does *not* trigger the transition.
  if (!isValidAddress(P))
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an invalid address " + P.toString());
  // The NULL block is pre-concretized at address 0 in both phases, so
  // (int)NULL == 0 without transitioning.
  bool TransitionNow = !FinitePhase && P.Block != 0;
  if (TransitionNow)
    if (Outcome<Unit> Entered = enterFinitePhase(); !Entered)
      return Entered.propagate<Value>();
  const LiveBlock &B = Blocks[P.Block];
  Word Addr = wrapAdd(B.Base, P.Offset);
  Trace.noteCastToInt(P.Block, P.Offset, Addr, TransitionNow);
  return Outcome<Value>::success(Value::makeInt(Addr));
}

Outcome<Value> TwoPhaseMemory::castIntToPtr(Value Integer) {
  if (!Integer.isInt())
    return Outcome<Value>::undefined(
        "integer-to-pointer cast of a logical address");
  Word I = Integer.intValue();
  // Never triggers the transition: in phase 1 the index is empty, so every
  // nonzero integer reifies nothing and the cast is UB — there are no
  // concrete addresses to guess yet.
  if (I == 0) {
    Trace.noteCastToPtr(0, 0, 0);
    return Outcome<Value>::success(Value::makePtr(0, 0));
  }
  if (const AddressIndex::Entry *E = Index.find(I)) {
    Trace.noteCastToPtr(E->Id, I - E->Base, I);
    return Outcome<Value>::success(Value::makePtr(E->Id, I - E->Base));
  }
  return Outcome<Value>::undefined(
      "integer-to-pointer cast of " + wordToString(I) +
      " which reifies no valid address");
}

std::unique_ptr<Memory> TwoPhaseMemory::clone() const {
  auto Copy = std::make_unique<TwoPhaseMemory>(config(), Oracle->clone());
  Copy->copyBlocksFrom(*this);
  Copy->Index = Index;
  Copy->FinitePhase = FinitePhase;
  return Copy;
}

std::optional<std::string> TwoPhaseMemory::checkConsistency() const {
  if (Blocks.empty() || !Blocks[0].Valid || Blocks[0].Size != 1 ||
      !Blocks[0].HasBase || Blocks[0].Base != 0)
    return "NULL block is damaged";
  if (!FinitePhase && !Index.empty())
    return "phase-1 memory has concretized blocks";
  const uint64_t Limit = config().AddressWords - 1;
  uint64_t PrevEnd = 0;
  bool First = true;
  for (const AddressIndex::Entry &E : Index.entries()) {
    if (E.Base == 0)
      return "concretized block includes address 0";
    uint64_t End = static_cast<uint64_t>(E.Base) + E.Size;
    if (End > Limit)
      return "concretized block includes the maximum address";
    if (!First && E.Base < PrevEnd)
      return "concretized blocks overlap at " + wordToString(E.Base);
    PrevEnd = End;
    First = false;
    if (E.Id >= Blocks.size())
      return "index entry for nonexistent block " + std::to_string(E.Id);
    const LiveBlock &B = Blocks[E.Id];
    if (!B.Valid || !B.HasBase || B.Base != E.Base || B.Size != E.Size)
      return "index entry disagrees with block " + std::to_string(E.Id);
  }
  size_t ConcreteValid = 0;
  for (BlockId Id = 1; Id < Blocks.size(); ++Id) {
    const LiveBlock &B = Blocks[Id];
    if (B.Valid && !B.Data)
      return "block " + std::to_string(Id) + " has no contents storage";
    if (!FinitePhase && Id != 0 && B.HasBase)
      return "phase-1 block " + std::to_string(Id) +
             " has a concrete base";
    if (B.Valid && B.HasBase)
      ++ConcreteValid;
  }
  if (ConcreteValid != Index.size())
    return "address index is missing concretized blocks";
  return std::nullopt;
}
