//===- memory/Placement.cpp -----------------------------------------------===//

#include "memory/Placement.h"

#include <cassert>

using namespace qcm;

PlacementOracle::~PlacementOracle() = default;

std::vector<FreeInterval>
qcm::computeFreeIntervals(const std::map<Word, Word> &Occupied,
                          uint64_t AddressWords) {
  assert(AddressWords >= 2 && "address space too small to be usable");
  std::vector<FreeInterval> Free;
  // Usable space is [1, AddressWords - 1).
  uint64_t Cursor = 1;
  const uint64_t Limit = AddressWords - 1;
  for (const auto &[Base, Size] : Occupied) {
    assert(Base >= 1 && "occupied range includes address 0");
    assert(static_cast<uint64_t>(Base) + Size <= Limit &&
           "occupied range includes the maximum address");
    if (Base > Cursor)
      Free.push_back(
          FreeInterval{static_cast<Word>(Cursor), static_cast<Word>(Base)});
    Cursor = static_cast<uint64_t>(Base) + Size;
  }
  if (Cursor < Limit)
    Free.push_back(
        FreeInterval{static_cast<Word>(Cursor), static_cast<Word>(Limit)});
  return Free;
}

uint64_t qcm::countPlacements(const std::vector<FreeInterval> &Free,
                              Word Size) {
  if (Size == 0)
    return 0;
  uint64_t Count = 0;
  for (const FreeInterval &I : Free)
    if (I.length() >= Size)
      Count += I.length() - Size + 1;
  return Count;
}

std::optional<Word>
FirstFitOracle::choose(Word Size, const std::vector<FreeInterval> &Free) {
  for (const FreeInterval &I : Free)
    if (I.length() >= Size)
      return I.Begin;
  return std::nullopt;
}

std::unique_ptr<PlacementOracle> FirstFitOracle::clone() const {
  return std::make_unique<FirstFitOracle>();
}

std::optional<Word>
LastFitOracle::choose(Word Size, const std::vector<FreeInterval> &Free) {
  for (auto It = Free.rbegin(); It != Free.rend(); ++It)
    if (It->length() >= Size)
      return static_cast<Word>(It->End - Size);
  return std::nullopt;
}

std::unique_ptr<PlacementOracle> LastFitOracle::clone() const {
  return std::make_unique<LastFitOracle>();
}

std::optional<Word>
RandomOracle::choose(Word Size, const std::vector<FreeInterval> &Free) {
  uint64_t Total = countPlacements(Free, Size);
  if (Total == 0)
    return std::nullopt;
  uint64_t Index = Generator.nextBelow(Total);
  for (const FreeInterval &I : Free) {
    if (I.length() < Size)
      continue;
    uint64_t Here = I.length() - Size + 1;
    if (Index < Here)
      return static_cast<Word>(I.Begin + Index);
    Index -= Here;
  }
  assert(false && "placement index out of range");
  return std::nullopt;
}

std::unique_ptr<PlacementOracle> RandomOracle::clone() const {
  // Copying the generator state continues the identical decision stream.
  auto Copy = std::make_unique<RandomOracle>(Seed);
  Copy->Generator = Generator;
  return Copy;
}

std::optional<Word>
FixedSequenceOracle::choose(Word Size, const std::vector<FreeInterval> &Free) {
  if (Next >= Bases.size())
    return std::nullopt;
  Word Base = Bases[Next++];
  for (const FreeInterval &I : Free) {
    if (Base < I.Begin)
      continue;
    uint64_t End = static_cast<uint64_t>(Base) + Size;
    if (End <= I.End)
      return Base;
  }
  return std::nullopt;
}

std::unique_ptr<PlacementOracle> FixedSequenceOracle::clone() const {
  auto Copy = std::make_unique<FixedSequenceOracle>(Bases);
  Copy->Next = Next;
  return Copy;
}

std::optional<Word>
ExhaustedOracle::choose(Word, const std::vector<FreeInterval> &) {
  return std::nullopt;
}

std::unique_ptr<PlacementOracle> ExhaustedOracle::clone() const {
  return std::make_unique<ExhaustedOracle>();
}
