//===- memory/LogicalMemory.h - CompCert-style logical model ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The logical memory model of Section 2.2:
///
///   Mem   = BlockID -fin-> Block
///   Block = { (v, n, c) | v in bool, n in N, c in Val^n }
///   Val   = { i in int32 } |+| { (l, i) in BlockID x int32 }
///
/// Memory is an unbounded set of logical blocks; pointers are block/offset
/// pairs that cannot be forged, which is what buys exclusive ownership and
/// hence the classic optimizations. Its weakness — the subject of the paper
/// — is integer-pointer casts, for which it offers two (bad) options,
/// selectable here via CastBehavior:
///
/// * \c Error: casts are undefined behavior (a strict reading);
/// * \c TransparentNop: casts are the identity, letting logical addresses
///   flow into integer-typed positions (CompCert's actual choice). Paired
///   with the loose type discipline in the interpreter this reproduces the
///   CompCert comparison of Sections 2.2 and 3.5 (Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_LOGICALMEMORY_H
#define QCM_MEMORY_LOGICALMEMORY_H

#include "memory/BlockMemory.h"

namespace qcm {

/// The CompCert-style logical model.
class LogicalMemory : public BlockMemory {
public:
  /// How integer-pointer casts behave; see the file comment.
  enum class CastBehavior {
    Error,
    TransparentNop,
  };

  explicit LogicalMemory(MemoryConfig Config,
                         CastBehavior Casts = CastBehavior::Error);

  ModelKind kind() const override { return ModelKind::Logical; }

  Outcome<Value> castPtrToInt(Value Pointer) override;
  Outcome<Value> castIntToPtr(Value Integer) override;

  std::unique_ptr<Memory> clone() const override;
  std::optional<std::string> checkConsistency() const override;

  CastBehavior castBehavior() const { return Casts; }

  /// Reset-and-reuse: returns to the freshly-constructed state keeping
  /// storage capacity, optionally switching the cast behavior.
  void reset(std::optional<CastBehavior> NewCasts = std::nullopt);

private:
  CastBehavior Casts;
};

} // namespace qcm

#endif // QCM_MEMORY_LOGICALMEMORY_H
