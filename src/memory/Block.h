//===- memory/Block.h - Memory blocks ---------------------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quasi-concrete block representation of Section 3.1:
///
///   Block = { (v, p, n, c) | p in int32 |+| {undef},
///             v in bool, n in N, c in Val^n }
///
/// where \c v is the validity flag, \c p the optional concrete base address
/// (absent for purely logical blocks), \c n the size in words, and \c c the
/// contents. The logical model of Section 2.2 is the special case where \c p
/// is always absent; the concrete model is the case where \c p is always
/// present.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_BLOCK_H
#define QCM_MEMORY_BLOCK_H

#include "memory/Value.h"

#include <optional>
#include <vector>

namespace qcm {

/// One memory block. Used both as live storage by the logical-family models
/// and as a uniform snapshot representation across all three models.
struct Block {
  /// Validity flag: false once the block has been freed. Accessing an
  /// invalid block is undefined behavior.
  bool Valid = true;

  /// Concrete base address, if the block has been realized (quasi-concrete)
  /// or was allocated concretely (concrete model). Absent for logical
  /// blocks.
  std::optional<Word> Base;

  /// Size in words.
  Word Size = 0;

  /// Contents; exactly Size entries while the block is valid.
  std::vector<Value> Contents;

  bool isConcrete() const { return Base.has_value(); }

  /// Exact state equality (validity, realization, size, and contents).
  friend bool operator==(const Block &A, const Block &B) {
    return A.Valid == B.Valid && A.Base == B.Base && A.Size == B.Size &&
           A.Contents == B.Contents;
  }

  /// True if the concrete range of this block contains address \p Address.
  /// Computed in Word width only: with unsigned wraparound, Address - Base
  /// is >= Size whenever Address < Base, so the single compare is exact and
  /// overflow-safe even for ranges ending at the top of the address space.
  bool containsAddress(Word Address) const {
    if (!Base)
      return false;
    return Address - *Base < Size;
  }
};

} // namespace qcm

#endif // QCM_MEMORY_BLOCK_H
