//===- memory/MemTrace.h - Memory-event tracing and statistics --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer of the memory models. Every model emits a
/// MemEvent for each alloc, free, load, store, cast (with realization
/// outcome), realization, and fault transition, tagged with block id,
/// offset, concrete address (if realized), and the interpreter step counter
/// threaded in by the Machine. Events flow into an optional MemTraceSink;
/// aggregate ModelStats counters are maintained unconditionally (they are a
/// handful of integer increments).
///
/// Overhead contract: with no sink installed (the null path) an emission
/// point is a few counter increments and one branch; building
/// -DQCM_TRACE_ENABLED=0 compiles even that away. This keeps the paper's
/// per-operation semantics benchmarkable (bench_models_perf) while making
/// the distinctive events of the paper — realizations and their failures
/// (Sections 3-4), the no-behavior/OOM transition (Section 2.3) — visible.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_MEMTRACE_H
#define QCM_MEMORY_MEMTRACE_H

#include "support/Fault.h"
#include "support/Ints.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace qcm {

/// The taxonomy of memory events.
enum class MemEventKind {
  /// A block (or concrete range) was allocated.
  Alloc,
  /// A live block was deallocated.
  Free,
  /// A word was loaded.
  Load,
  /// A word was stored.
  Store,
  /// A pointer-to-integer cast succeeded (quasi-concrete: after realizing).
  CastToInt,
  /// An integer-to-pointer cast succeeded.
  CastToPtr,
  /// A logical block acquired a concrete base address (Section 3.4's
  /// effectful step; also emitted when a block is born concrete).
  Realize,
  /// The execution transitioned into a fault: undefined behavior or
  /// out-of-memory ("no behavior"). Emitted once, at the transition.
  Fault,
};

/// Short stable name, used both in JSONL output and human rendering.
std::string memEventKindName(MemEventKind Kind);

/// One memory event. Absent optionals mean "not applicable for this model
/// or event" (e.g. the concrete model has no block ids on loads).
struct MemEvent {
  MemEventKind Kind = MemEventKind::Alloc;
  /// Interpreter step counter at emission; 0 when no machine is attached
  /// (direct memory-API use).
  uint64_t Step = 0;
  std::optional<BlockId> Block;
  std::optional<Word> Offset;
  /// Concrete address involved, if the block is realized / the model is
  /// concrete.
  std::optional<Word> ConcreteAddr;
  /// Size in words (alloc, free, realize).
  std::optional<Word> Size;
  /// For CastToInt under the quasi-concrete model: true when this cast
  /// performed the realization (first cast of the block).
  bool RealizedNow = false;
  /// For Fault events: which fault class.
  std::optional<Fault::Kind> FaultClass;
  /// For Fault and allocation-failure events: true when the failure was
  /// forced by fault injection (memory/FaultInjection.h). Organic events
  /// omit the field in JSON, so pre-existing traces are unchanged.
  bool Injected = false;
  /// Free-form detail (fault reason).
  std::string Detail;

  /// One JSON object, single line, no trailing newline.
  std::string toJson() const;
  /// One human-readable line, e.g. "step 12  cast2int   block 3 off 0 -> 2049 (realized)".
  std::string toString() const;
};

/// Receives events as they happen. Implementations must not re-enter the
/// memory model.
class MemTraceSink {
public:
  virtual ~MemTraceSink();
  virtual void onEvent(const MemEvent &E) = 0;
};

/// Explicit do-nothing sink. Installing it is equivalent to installing no
/// sink at all, minus one indirect call per event; it exists so callers can
/// select "tracing off" through the same configuration path that selects a
/// real sink.
class NullTraceSink : public MemTraceSink {
public:
  void onEvent(const MemEvent &) override {}
};

/// Buffers every event in memory; for tests and the qcm-trace tool.
class CollectingTraceSink : public MemTraceSink {
public:
  void onEvent(const MemEvent &E) override { EventLog.push_back(E); }
  const std::vector<MemEvent> &events() const { return EventLog; }
  void clear() { EventLog.clear(); }

private:
  std::vector<MemEvent> EventLog;
};

/// Streams events as JSONL: one JSON object per line.
class JsonlTraceSink : public MemTraceSink {
public:
  explicit JsonlTraceSink(std::ostream &Out) : Out(Out) {}
  void onEvent(const MemEvent &E) override;

private:
  std::ostream &Out;
};

/// Aggregate counters over one memory instance's lifetime.
struct ModelStats {
  uint64_t Allocations = 0;
  /// Allocations that failed with out-of-memory (concrete/eager models).
  uint64_t AllocationFailures = 0;
  uint64_t Frees = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  /// Successful pointer-to-integer casts.
  uint64_t CastsToInt = 0;
  /// Successful integer-to-pointer casts.
  uint64_t CastsToPtr = 0;
  /// Blocks that acquired a concrete base address (realization at cast time
  /// in the quasi-concrete model; concrete birth elsewhere).
  uint64_t Realizations = 0;
  /// Realizations that failed for want of concrete address space — the
  /// paper's cast-time out-of-memory (Section 3.4).
  uint64_t RealizationFailures = 0;
  /// Fault transitions by class.
  uint64_t UndefinedFaults = 0;
  uint64_t NoBehaviorFaults = 0;
  /// Currently live (valid) blocks, and the high-water mark.
  uint64_t LiveBlocks = 0;
  uint64_t PeakLiveBlocks = 0;
  /// Bytes of live realized (concretely addressed) blocks, and the
  /// high-water mark. One word is 4 bytes (32-bit architecture).
  uint64_t RealizedBytes = 0;
  uint64_t PeakRealizedBytes = 0;

  /// Sum of all successful memory operations.
  uint64_t totalOperations() const {
    return Allocations + Frees + Loads + Stores + CastsToInt + CastsToPtr;
  }

  /// Element-wise merge: counters add, high-water marks take the max.
  void accumulate(const ModelStats &Other);

  std::string toJson() const;
  /// Multi-line human-readable rendering, one "key: value" row per counter.
  std::string toString() const;
};

/// Per-memory-instance trace state: the counters, an optional sink, and the
/// interpreter's step counter (bound by the Machine). Lives inside every
/// Memory; clones of a memory start with a fresh, unbound MemTrace so the
/// refinement machinery's exploratory runs do not pollute the original's
/// statistics.
class MemTrace {
public:
  /// Installs \p S (non-owning; may be null to disable emission). Counters
  /// are maintained regardless.
  void setSink(MemTraceSink *S) { Sink = S; }
  MemTraceSink *sink() const { return Sink; }

  /// Points the trace at the interpreter's step counter so events carry
  /// execution time. Null unbinds.
  void bindStepCounter(const uint64_t *Counter) { StepCounter = Counter; }

  const ModelStats &stats() const { return Counters; }
  void resetStats() { Counters = ModelStats{}; }

#if QCM_TRACE_ENABLED
  void noteAlloc(std::optional<BlockId> Block, Word Size,
                 std::optional<Word> Base) {
    ++Counters.Allocations;
    ++Counters.LiveBlocks;
    if (Counters.LiveBlocks > Counters.PeakLiveBlocks)
      Counters.PeakLiveBlocks = Counters.LiveBlocks;
    if (Base)
      noteRealized(Size);
    if (Sink)
      emit(MemEventKind::Alloc, Block, std::nullopt, Base, Size,
           /*RealizedNow=*/Base.has_value());
  }

  void noteAllocFailure(Word Size, bool Injected = false) {
    ++Counters.AllocationFailures;
    if (Sink)
      emit(MemEventKind::Alloc, std::nullopt, std::nullopt, std::nullopt,
           Size, false, "out of memory", Injected);
  }

  void noteFree(std::optional<BlockId> Block, Word Size, bool WasRealized,
                std::optional<Word> Base = std::nullopt) {
    ++Counters.Frees;
    if (Counters.LiveBlocks)
      --Counters.LiveBlocks;
    if (WasRealized)
      Counters.RealizedBytes -= std::min<uint64_t>(
          Counters.RealizedBytes, static_cast<uint64_t>(Size) * BytesPerWord);
    if (Sink)
      emit(MemEventKind::Free, Block, std::nullopt, Base, Size, false);
  }

  void noteLoad(std::optional<BlockId> Block, std::optional<Word> Offset,
                std::optional<Word> Addr) {
    ++Counters.Loads;
    if (Sink)
      emit(MemEventKind::Load, Block, Offset, Addr, std::nullopt, false);
  }

  void noteStore(std::optional<BlockId> Block, std::optional<Word> Offset,
                 std::optional<Word> Addr) {
    ++Counters.Stores;
    if (Sink)
      emit(MemEventKind::Store, Block, Offset, Addr, std::nullopt, false);
  }

  void noteCastToInt(std::optional<BlockId> Block, std::optional<Word> Offset,
                     std::optional<Word> ResultAddr, bool RealizedNow) {
    ++Counters.CastsToInt;
    if (Sink)
      emit(MemEventKind::CastToInt, Block, Offset, ResultAddr, std::nullopt,
           RealizedNow);
  }

  void noteCastToPtr(std::optional<BlockId> Block, std::optional<Word> Offset,
                     std::optional<Word> SourceAddr) {
    ++Counters.CastsToPtr;
    if (Sink)
      emit(MemEventKind::CastToPtr, Block, Offset, SourceAddr, std::nullopt,
           false);
  }

  void noteRealize(BlockId Block, Word Size, Word Base) {
    noteRealized(Size);
    if (Sink)
      emit(MemEventKind::Realize, Block, std::nullopt, Base, Size,
           /*RealizedNow=*/true);
  }

  void noteRealizeFailure(BlockId Block, Word Size) {
    ++Counters.RealizationFailures;
    if (Sink)
      emit(MemEventKind::Realize, Block, std::nullopt, std::nullopt, Size,
           false, "no concrete placement");
  }

  /// Records the fault transition ending an execution; called by the
  /// interpreter/runner, not by the models (so each run logs it once).
  void noteFault(const Fault &F) {
    if (F.isOutOfMemory())
      ++Counters.NoBehaviorFaults;
    else
      ++Counters.UndefinedFaults;
    if (Sink)
      emitFault(F);
  }
#else
  void noteAlloc(std::optional<BlockId>, Word, std::optional<Word>) {}
  void noteAllocFailure(Word, bool = false) {}
  void noteFree(std::optional<BlockId>, Word, bool,
                std::optional<Word> = std::nullopt) {}
  void noteLoad(std::optional<BlockId>, std::optional<Word>,
                std::optional<Word>) {}
  void noteStore(std::optional<BlockId>, std::optional<Word>,
                 std::optional<Word>) {}
  void noteCastToInt(std::optional<BlockId>, std::optional<Word>,
                     std::optional<Word>, bool) {}
  void noteCastToPtr(std::optional<BlockId>, std::optional<Word>,
                     std::optional<Word>) {}
  void noteRealize(BlockId, Word, Word) {}
  void noteRealizeFailure(BlockId, Word) {}
  void noteFault(const Fault &) {}
#endif

private:
  static constexpr uint64_t BytesPerWord = sizeof(Word);

  void noteRealized(Word Size) {
    ++Counters.Realizations;
    Counters.RealizedBytes += static_cast<uint64_t>(Size) * BytesPerWord;
    if (Counters.RealizedBytes > Counters.PeakRealizedBytes)
      Counters.PeakRealizedBytes = Counters.RealizedBytes;
  }

  /// Out-of-line slow path: builds the MemEvent and hands it to the sink.
  void emit(MemEventKind Kind, std::optional<BlockId> Block,
            std::optional<Word> Offset, std::optional<Word> Addr,
            std::optional<Word> Size, bool RealizedNow,
            std::string Detail = {}, bool Injected = false);
  void emitFault(const Fault &F);

  ModelStats Counters;
  MemTraceSink *Sink = nullptr;
  const uint64_t *StepCounter = nullptr;
};

} // namespace qcm

#endif // QCM_MEMORY_MEMTRACE_H
