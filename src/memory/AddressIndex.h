//===- memory/AddressIndex.h - Sorted base->block interval index -*- C++ -*-==//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted interval index over the concrete address space: one entry per
/// realized (or concretely allocated) block, ordered by base address. The
/// paper's invariant that valid concrete ranges are disjoint (Section 3.1)
/// makes the containing entry for any address unique, so cast2ptr's
/// preimage lookup and allocation-range queries are a binary search instead
/// of the O(#blocks) scan the models previously paid per cast.
///
/// Maintained incrementally: insert on allocate/realize, erase on free.
/// The NULL block (concrete range [0, 1)) is never indexed — it lies
/// outside the usable space [1, AddressWords - 1) and callers special-case
/// address 0.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_ADDRESSINDEX_H
#define QCM_MEMORY_ADDRESSINDEX_H

#include "memory/Placement.h"
#include "support/Ints.h"

#include <vector>

namespace qcm {

/// Sorted vector of disjoint concrete ranges, each tagged with the owning
/// block id. Cheap to copy (clone() support) and to iterate in base order.
class AddressIndex {
public:
  struct Entry {
    Word Base = 0;
    Word Size = 0;
    BlockId Id = 0;

    /// Overflow-safe containment: with unsigned wraparound, Address - Base
    /// is >= Size whenever Address < Base, so one compare suffices even for
    /// ranges ending at the top of the address space.
    bool contains(Word Address) const { return Address - Base < Size; }
  };

  /// Inserts the range [Base, Base + Size) for block \p Id. The range must
  /// be disjoint from every indexed range.
  void insert(Word Base, Word Size, BlockId Id);

  /// Removes the entry based at exactly \p Base; no-op if absent.
  void erase(Word Base);

  /// The entry whose range contains \p Address, or nullptr.
  const Entry *find(Word Address) const;

  /// Entries in increasing base order.
  const std::vector<Entry> &entries() const { return Entries; }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  void clear() { Entries.clear(); }

  /// Free intervals of the usable space [1, AddressWords - 1) around the
  /// indexed ranges — the same contract as computeFreeIntervals(), without
  /// materializing an intermediate map per query.
  std::vector<FreeInterval> freeIntervals(uint64_t AddressWords) const;

private:
  std::vector<Entry> Entries;
};

} // namespace qcm

#endif // QCM_MEMORY_ADDRESSINDEX_H
