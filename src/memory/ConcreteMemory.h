//===- memory/ConcreteMemory.h - The fully concrete model -------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete memory model of Section 2.1:
///
///   Mem   = (int32 -> Val) x list Alloc
///   Alloc = { (p, n) | p, n in int32 }
///   Val   = { i in int32 }
///
/// Memory is a finite flat array of words (stored sparsely); the allocation
/// list tracks live ranges. Pointers are plain integers, so integer-pointer
/// casts are native no-ops. Allocation consults a PlacementOracle and fails
/// with out-of-memory when no placement exists — this finiteness is exactly
/// what invalidates dead-allocation elimination in this model (Section 1).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_CONCRETEMEMORY_H
#define QCM_MEMORY_CONCRETEMEMORY_H

#include "memory/Memory.h"
#include "memory/Placement.h"

#include <map>
#include <unordered_map>

namespace qcm {

/// The fully concrete model. Values flowing through it must be integers;
/// logical addresses reaching any operation are undefined behavior (they
/// cannot arise when the interpreter runs entirely under this model).
class ConcreteMemory : public Memory {
public:
  /// Creates a concrete memory. \p Oracle decides allocation placement; the
  /// default is first-fit.
  explicit ConcreteMemory(MemoryConfig Config,
                          std::unique_ptr<PlacementOracle> Oracle = nullptr);

  ModelKind kind() const override { return ModelKind::Concrete; }

  Outcome<Value> allocate(Word NumWords) override;
  Outcome<Unit> deallocate(Value Pointer) override;
  Outcome<Value> load(Value Address) override;
  Outcome<Unit> store(Value Address, Value V) override;
  Outcome<Value> castPtrToInt(Value Pointer) override;
  Outcome<Value> castIntToPtr(Value Integer) override;

  bool isValidAddress(const Ptr &Address) const override;

  std::vector<std::pair<BlockId, Block>> snapshot() const override;
  std::unique_ptr<Memory> clone() const override;
  std::optional<std::string> checkConsistency() const override;

  /// True if \p Address lies inside some live allocation.
  bool isAllocatedAddress(Word Address) const;

  /// Number of live allocations.
  size_t numAllocations() const { return Allocations.size(); }

private:
  struct AllocationInfo {
    Word Size = 0;
    /// Synthetic id for snapshot()/refinement bookkeeping; allocation order.
    BlockId Id = 0;
  };

  /// Finds the allocation whose range contains \p Address, or nullptr.
  const std::pair<const Word, AllocationInfo> *
  findContaining(Word Address) const;

  std::map<Word, Word> occupiedRanges() const;

  std::unique_ptr<PlacementOracle> Oracle;
  /// Live allocations: base address -> info. Ordered for free-interval
  /// computation and deterministic iteration.
  std::map<Word, AllocationInfo> Allocations;
  /// Sparse cell store; absent cells read as integer 0. Cells are erased
  /// when their allocation is freed.
  std::unordered_map<Word, Value> Cells;
  /// Retired allocations, kept only for snapshot() (refinement bookkeeping).
  std::vector<std::pair<BlockId, Block>> Retired;
  BlockId NextId = 1;
};

} // namespace qcm

#endif // QCM_MEMORY_CONCRETEMEMORY_H
