//===- memory/ConcreteMemory.h - The fully concrete model -------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete memory model of Section 2.1:
///
///   Mem   = (int32 -> Val) x list Alloc
///   Alloc = { (p, n) | p, n in int32 }
///   Val   = { i in int32 }
///
/// Memory is a finite flat array of words; the allocation list tracks live
/// ranges. Pointers are plain integers, so integer-pointer casts are native
/// no-ops. Allocation consults a PlacementOracle and fails with
/// out-of-memory when no placement exists — this finiteness is exactly what
/// invalidates dead-allocation elimination in this model (Section 1).
///
/// Storage layout: live ranges are a base-sorted vector of allocation
/// records (the interval index), each owning a contiguous span of words in
/// a ValueSlab. A load/store binary-searches the containing range and then
/// indexes the span directly — no per-cell map. Freed spans are recycled
/// through the slab, so alloc/free churn does not grow the arena.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_CONCRETEMEMORY_H
#define QCM_MEMORY_CONCRETEMEMORY_H

#include "memory/Memory.h"
#include "memory/Placement.h"
#include "memory/ValueSlab.h"

namespace qcm {

/// The fully concrete model. Values flowing through it must be integers;
/// logical addresses reaching any operation are undefined behavior (they
/// cannot arise when the interpreter runs entirely under this model).
class ConcreteMemory : public Memory {
public:
  /// Creates a concrete memory. \p Oracle decides allocation placement; the
  /// default is first-fit.
  explicit ConcreteMemory(MemoryConfig Config,
                          std::unique_ptr<PlacementOracle> Oracle = nullptr);

  ModelKind kind() const override { return ModelKind::Concrete; }

  Outcome<Value> allocate(Word NumWords) override;
  Outcome<Unit> deallocate(Value Pointer) override;
  Outcome<Value> load(Value Address) override;
  Outcome<Unit> store(Value Address, Value V) override;
  Outcome<Value> castPtrToInt(Value Pointer) override;
  Outcome<Value> castIntToPtr(Value Integer) override;

  bool isValidAddress(const Ptr &Address) const override;

  std::vector<std::pair<BlockId, Block>> snapshot() const override;
  std::unique_ptr<Memory> clone() const override;
  std::optional<std::string> checkConsistency() const override;

  /// Reset-and-reuse: returns to the freshly-constructed state keeping
  /// storage capacity. \p Oracle replaces the placement oracle; passing
  /// nullptr keeps the current oracle and rewinds it to its initial
  /// decision stream.
  void reset(std::unique_ptr<PlacementOracle> Oracle = nullptr);

  /// True if \p Address lies inside some live allocation.
  bool isAllocatedAddress(Word Address) const;

  /// Number of live allocations.
  size_t numAllocations() const { return Allocations.size(); }

private:
  /// One live range: the concrete interval plus its storage span. Kept in a
  /// base-sorted vector, which doubles as the interval index.
  struct Allocation {
    Word Base = 0;
    Word Size = 0;
    /// Synthetic id for snapshot()/refinement bookkeeping; allocation order.
    BlockId Id = 0;
    /// Span of Size words in the slab.
    Value *Data = nullptr;

    /// Overflow-safe: unsigned wraparound makes Address - Base >= Size
    /// whenever Address < Base.
    bool contains(Word Address) const { return Address - Base < Size; }
  };

  /// Finds the allocation whose range contains \p Address, or nullptr.
  const Allocation *findContaining(Word Address) const;

  std::unique_ptr<PlacementOracle> Oracle;
  /// Live allocations sorted by base address: binary-searchable for
  /// address resolution, walkable in order for free-interval computation
  /// and deterministic iteration.
  std::vector<Allocation> Allocations;
  /// Index of the most recently hit allocation; a lookup hint only (never
  /// trusted without re-checking containment), so staleness after
  /// insertions/erasures cannot produce wrong answers.
  mutable size_t LastHit = 0;
  ValueSlab Slab;
  /// Retired allocations, kept only for snapshot() (refinement
  /// bookkeeping). Their contents are not observable, so their spans are
  /// recycled and Block entries carry empty Contents.
  std::vector<std::pair<BlockId, Block>> Retired;
  BlockId NextId = 1;
};

} // namespace qcm

#endif // QCM_MEMORY_CONCRETEMEMORY_H
