//===- memory/FaultInjection.cpp ------------------------------------------===//

#include "memory/FaultInjection.h"

using namespace qcm;

//===----------------------------------------------------------------------===//
// FaultPlan spec syntax
//===----------------------------------------------------------------------===//

std::string FaultPlan::toString() const {
  std::string Text;
  auto Clause = [&](const char *Key, const std::optional<uint64_t> &V) {
    if (!V)
      return;
    if (!Text.empty())
      Text += '+';
    Text += Key;
    Text += ':';
    Text += std::to_string(*V);
  };
  Clause("alloc", FailAllocation);
  Clause("cast", FailCast);
  Clause("op", FailOperation);
  Clause("words", ShrinkAddressWords);
  return Text.empty() ? "none" : Text;
}

std::optional<FaultPlan> FaultPlan::parse(const std::string &Spec,
                                          std::string &Error) {
  FaultPlan Plan;
  if (Spec == "none" || Spec.empty())
    return Plan;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t End = Spec.find('+', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Clause = Spec.substr(Pos, End - Pos);
    size_t Colon = Clause.find(':');
    if (Colon == std::string::npos || Colon + 1 >= Clause.size()) {
      Error = "malformed fault-plan clause '" + Clause +
              "' (expected key:N, e.g. alloc:3)";
      return std::nullopt;
    }
    std::string Key = Clause.substr(0, Colon);
    std::string Num = Clause.substr(Colon + 1);
    uint64_t Value = 0;
    for (char C : Num) {
      if (C < '0' || C > '9') {
        Error = "fault-plan clause '" + Clause + "' has a non-numeric count";
        return std::nullopt;
      }
      if (Value > (UINT64_MAX - 9) / 10) {
        Error = "fault-plan clause '" + Clause + "' overflows";
        return std::nullopt;
      }
      Value = Value * 10 + static_cast<uint64_t>(C - '0');
    }
    std::optional<uint64_t> *Slot = nullptr;
    if (Key == "alloc")
      Slot = &Plan.FailAllocation;
    else if (Key == "cast")
      Slot = &Plan.FailCast;
    else if (Key == "op")
      Slot = &Plan.FailOperation;
    else if (Key == "words")
      Slot = &Plan.ShrinkAddressWords;
    if (!Slot) {
      Error = "unknown fault-plan key '" + Key +
              "' (expected alloc, cast, op, or words)";
      return std::nullopt;
    }
    if (*Slot) {
      Error = "fault-plan key '" + Key + "' given twice";
      return std::nullopt;
    }
    if (Value == 0 && Key != "words") {
      Error = "fault-plan ordinals are 1-based; '" + Clause +
              "' names no operation";
      return std::nullopt;
    }
    *Slot = Value;
    if (End == Spec.size())
      break;
    Pos = End + 1;
  }
  return Plan;
}

//===----------------------------------------------------------------------===//
// FaultInjectingMemory
//===----------------------------------------------------------------------===//

FaultInjectingMemory::FaultInjectingMemory(std::unique_ptr<Memory> Inner,
                                           FaultPlan Plan)
    : Memory(Inner->config()), Inner(std::move(Inner)),
      Plan(std::move(Plan)) {}

void FaultInjectingMemory::rewind() {
  AllocSeen = 0;
  CastSeen = 0;
  OpsSeen = 0;
  Fired = false;
}

std::optional<Fault>
FaultInjectingMemory::injectAt(std::optional<uint64_t> Ordinal, uint64_t Seen,
                               const char *What) {
  if (Ordinal && Seen == *Ordinal) {
    Fired = true;
    return Fault::injectedOutOfMemory("injected exhaustion: " +
                                      std::string(What) + " #" +
                                      std::to_string(Seen));
  }
  if (Plan.FailOperation && OpsSeen == *Plan.FailOperation) {
    Fired = true;
    return Fault::injectedOutOfMemory("injected exhaustion: operation #" +
                                      std::to_string(OpsSeen));
  }
  return std::nullopt;
}

Outcome<Value> FaultInjectingMemory::allocate(Word NumWords) {
  ++AllocSeen;
  ++OpsSeen;
  if (std::optional<Fault> F =
          injectAt(Plan.FailAllocation, AllocSeen, "allocation")) {
    // Mirror the model's own failure bookkeeping so an injected exhaustion
    // is observable exactly like a real one (statistics, trace events),
    // tagged so trace consumers can tell it apart.
    Inner->trace().noteAllocFailure(NumWords, /*Injected=*/true);
    return *F;
  }
  return Inner->allocate(NumWords);
}

Outcome<Unit> FaultInjectingMemory::deallocate(Value Pointer) {
  ++OpsSeen;
  if (std::optional<Fault> F = injectAt(std::nullopt, 0, "deallocation"))
    return *F;
  return Inner->deallocate(std::move(Pointer));
}

Outcome<Value> FaultInjectingMemory::load(Value Address) {
  ++OpsSeen;
  if (std::optional<Fault> F = injectAt(std::nullopt, 0, "load"))
    return *F;
  return Inner->load(std::move(Address));
}

Outcome<Unit> FaultInjectingMemory::store(Value Address, Value V) {
  ++OpsSeen;
  if (std::optional<Fault> F = injectAt(std::nullopt, 0, "store"))
    return *F;
  return Inner->store(std::move(Address), std::move(V));
}

Outcome<Value> FaultInjectingMemory::castPtrToInt(Value Pointer) {
  ++CastSeen;
  ++OpsSeen;
  if (std::optional<Fault> F =
          injectAt(Plan.FailCast, CastSeen, "pointer-to-integer cast"))
    return *F;
  return Inner->castPtrToInt(std::move(Pointer));
}

Outcome<Value> FaultInjectingMemory::castIntToPtr(Value Integer) {
  ++OpsSeen;
  if (std::optional<Fault> F = injectAt(std::nullopt, 0, "cast"))
    return *F;
  return Inner->castIntToPtr(std::move(Integer));
}

bool FaultInjectingMemory::isValidAddress(const Ptr &Address) const {
  return Inner->isValidAddress(Address);
}

std::vector<std::pair<BlockId, Block>> FaultInjectingMemory::snapshot() const {
  return Inner->snapshot();
}

std::optional<Block> FaultInjectingMemory::getBlock(BlockId Id) const {
  return Inner->getBlock(Id);
}

std::unique_ptr<Memory> FaultInjectingMemory::clone() const {
  auto Copy = std::make_unique<FaultInjectingMemory>(Inner->clone(), Plan);
  Copy->AllocSeen = AllocSeen;
  Copy->CastSeen = CastSeen;
  Copy->OpsSeen = OpsSeen;
  Copy->Fired = Fired;
  return Copy;
}

std::optional<std::string> FaultInjectingMemory::checkConsistency() const {
  return Inner->checkConsistency();
}

std::unique_ptr<Memory>
qcm::wrapWithFaultInjection(std::unique_ptr<Memory> Inner,
                            const FaultPlan &Plan) {
#if QCM_FAULT_INJECTION_ENABLED
  if (Plan.needsDecorator())
    return std::make_unique<FaultInjectingMemory>(std::move(Inner), Plan);
#else
  (void)Plan;
#endif
  return Inner;
}
