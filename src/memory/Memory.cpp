//===- memory/Memory.cpp --------------------------------------------------===//

#include "memory/Memory.h"

using namespace qcm;

Memory::~Memory() = default;

std::optional<Block> Memory::getBlock(BlockId) const { return std::nullopt; }

std::string qcm::modelKindName(ModelKind Kind) {
  switch (Kind) {
  case ModelKind::Concrete:
    return "concrete";
  case ModelKind::Logical:
    return "logical";
  case ModelKind::QuasiConcrete:
    return "quasi-concrete";
  case ModelKind::EagerQuasi:
    return "eager-quasi (rejected 3.4 design)";
  }
  return "unknown";
}
