//===- memory/Memory.cpp --------------------------------------------------===//

#include "memory/Memory.h"

using namespace qcm;

Memory::~Memory() = default;

std::optional<Block> Memory::getBlock(BlockId) const { return std::nullopt; }

// modelKindName lives in ModelRegistry.cpp: the name is part of each
// model's descriptor, and the registry is the single place model identity
// is enumerated.
