//===- memory/MemTrace.cpp ------------------------------------------------===//

#include "memory/MemTrace.h"

#include <ostream>

using namespace qcm;

MemTraceSink::~MemTraceSink() = default;

std::string qcm::memEventKindName(MemEventKind Kind) {
  switch (Kind) {
  case MemEventKind::Alloc:
    return "alloc";
  case MemEventKind::Free:
    return "free";
  case MemEventKind::Load:
    return "load";
  case MemEventKind::Store:
    return "store";
  case MemEventKind::CastToInt:
    return "cast2int";
  case MemEventKind::CastToPtr:
    return "cast2ptr";
  case MemEventKind::Realize:
    return "realize";
  case MemEventKind::Fault:
    return "fault";
  }
  return "unknown";
}

std::string MemEvent::toJson() const {
  JsonObject O;
  O.field("step", Step);
  O.field("kind", memEventKindName(Kind));
  if (Block)
    O.field("block", static_cast<uint64_t>(*Block));
  if (Offset)
    O.field("offset", static_cast<uint64_t>(*Offset));
  if (ConcreteAddr)
    O.field("addr", static_cast<uint64_t>(*ConcreteAddr));
  if (Size)
    O.field("size", static_cast<uint64_t>(*Size));
  if (Kind == MemEventKind::CastToInt || Kind == MemEventKind::Realize)
    O.fieldBool("realized", RealizedNow);
  if (FaultClass)
    O.field("class", *FaultClass == Fault::Kind::OutOfMemory ? "no-behavior"
                                                             : "undefined");
  if (Injected)
    O.fieldBool("injected", true);
  if (!Detail.empty())
    O.field("detail", Detail);
  return O.str();
}

std::string MemEvent::toString() const {
  std::string Text = "step " + std::to_string(Step) + "  ";
  std::string Name = memEventKindName(Kind);
  Name.resize(9, ' ');
  Text += Name;
  if (Block)
    Text += " block " + std::to_string(*Block);
  if (Offset)
    Text += " off " + wordToString(*Offset);
  if (Size)
    Text += " size " + wordToString(*Size);
  if (ConcreteAddr)
    Text += " @" + wordToString(*ConcreteAddr);
  if (Kind == MemEventKind::CastToInt && RealizedNow)
    Text += " (realizing)";
  if (FaultClass)
    Text += *FaultClass == Fault::Kind::OutOfMemory ? " [no-behavior]"
                                                    : " [undefined]";
  if (Injected)
    Text += " [injected]";
  if (!Detail.empty())
    Text += " -- " + Detail;
  return Text;
}

void JsonlTraceSink::onEvent(const MemEvent &E) {
  Out << E.toJson() << '\n';
}

void ModelStats::accumulate(const ModelStats &Other) {
  Allocations += Other.Allocations;
  AllocationFailures += Other.AllocationFailures;
  Frees += Other.Frees;
  Loads += Other.Loads;
  Stores += Other.Stores;
  CastsToInt += Other.CastsToInt;
  CastsToPtr += Other.CastsToPtr;
  Realizations += Other.Realizations;
  RealizationFailures += Other.RealizationFailures;
  UndefinedFaults += Other.UndefinedFaults;
  NoBehaviorFaults += Other.NoBehaviorFaults;
  LiveBlocks += Other.LiveBlocks;
  PeakLiveBlocks = std::max(PeakLiveBlocks, Other.PeakLiveBlocks);
  RealizedBytes += Other.RealizedBytes;
  PeakRealizedBytes = std::max(PeakRealizedBytes, Other.PeakRealizedBytes);
}

std::string ModelStats::toJson() const {
  JsonObject O;
  O.field("allocations", Allocations);
  O.field("allocation_failures", AllocationFailures);
  O.field("frees", Frees);
  O.field("loads", Loads);
  O.field("stores", Stores);
  O.field("casts_to_int", CastsToInt);
  O.field("casts_to_ptr", CastsToPtr);
  O.field("realizations", Realizations);
  O.field("realization_failures", RealizationFailures);
  O.field("undefined_faults", UndefinedFaults);
  O.field("no_behavior_faults", NoBehaviorFaults);
  O.field("live_blocks", LiveBlocks);
  O.field("peak_live_blocks", PeakLiveBlocks);
  O.field("realized_bytes", RealizedBytes);
  O.field("peak_realized_bytes", PeakRealizedBytes);
  return O.str();
}

std::string ModelStats::toString() const {
  auto Row = [](const char *Name, uint64_t V) {
    std::string Line = "  ";
    Line += Name;
    if (Line.size() < 24)
      Line.resize(24, ' ');
    return Line + std::to_string(V) + "\n";
  };
  std::string Text;
  Text += Row("allocations:", Allocations);
  Text += Row("allocation failures:", AllocationFailures);
  Text += Row("frees:", Frees);
  Text += Row("loads:", Loads);
  Text += Row("stores:", Stores);
  Text += Row("casts to int:", CastsToInt);
  Text += Row("casts to ptr:", CastsToPtr);
  Text += Row("realizations:", Realizations);
  Text += Row("realization failures:", RealizationFailures);
  Text += Row("undefined faults:", UndefinedFaults);
  Text += Row("no-behavior faults:", NoBehaviorFaults);
  Text += Row("live blocks:", LiveBlocks);
  Text += Row("peak live blocks:", PeakLiveBlocks);
  Text += Row("realized bytes:", RealizedBytes);
  Text += Row("peak realized bytes:", PeakRealizedBytes);
  return Text;
}

void MemTrace::emit(MemEventKind Kind, std::optional<BlockId> Block,
                    std::optional<Word> Offset, std::optional<Word> Addr,
                    std::optional<Word> Size, bool RealizedNow,
                    std::string Detail, bool Injected) {
  MemEvent E;
  E.Kind = Kind;
  E.Step = StepCounter ? *StepCounter : 0;
  E.Block = Block;
  E.Offset = Offset;
  E.ConcreteAddr = Addr;
  E.Size = Size;
  E.RealizedNow = RealizedNow;
  E.Injected = Injected;
  E.Detail = std::move(Detail);
  Sink->onEvent(E);
}

void MemTrace::emitFault(const Fault &F) {
  MemEvent E;
  E.Kind = MemEventKind::Fault;
  E.Step = StepCounter ? *StepCounter : 0;
  E.FaultClass = F.FaultKind;
  E.Injected = F.Injected;
  E.Detail = F.Reason;
  Sink->onEvent(E);
}
