//===- memory/BlockMemory.cpp ---------------------------------------------===//

#include "memory/BlockMemory.h"

using namespace qcm;

BlockMemory::BlockMemory(MemoryConfig Config,
                         std::optional<Word> NullBlockBase)
    : Memory(Config) {
  // Block 0: the NULL block. m(0) = (v, p, n, c) with v = true, p = 0,
  // n = 1 (Section 4).
  Block NullBlock;
  NullBlock.Valid = true;
  NullBlock.Base = NullBlockBase;
  NullBlock.Size = 1;
  NullBlock.Contents.assign(1, Value::makeInt(0));
  Blocks.push_back(std::move(NullBlock));
}

Outcome<Value> BlockMemory::allocate(Word NumWords) {
  if (NumWords == 0)
    return Outcome<Value>::undefined("malloc of zero words");
  // All blocks are born logical; realization, if any, happens at cast time
  // (Section 3.4). Logical allocation never exhausts memory.
  Block B;
  B.Valid = true;
  B.Base = std::nullopt;
  B.Size = NumWords;
  B.Contents.assign(NumWords, Value::makeInt(0));
  BlockId Id = static_cast<BlockId>(Blocks.size());
  Blocks.push_back(std::move(B));
  Trace.noteAlloc(Id, NumWords, std::nullopt);
  return Outcome<Value>::success(Value::makePtr(Id, 0));
}

Outcome<Unit> BlockMemory::deallocate(Value Pointer) {
  if (!Pointer.isInt() && Pointer.ptr().isNull())
    return Outcome<Unit>::success(Unit{}); // free(NULL) is a no-op.
  if (!Pointer.isPtr())
    return Outcome<Unit>::undefined(
        "free of an integer value in a block-structured model");
  const Ptr &P = Pointer.ptr();
  if (P.Block >= Blocks.size())
    return Outcome<Unit>::undefined("free of a nonexistent block");
  if (P.Offset != 0)
    return Outcome<Unit>::undefined(
        "free of a pointer that is not the start of its block");
  Block &B = Blocks[P.Block];
  if (!B.Valid)
    return Outcome<Unit>::undefined("double free of block " +
                                    std::to_string(P.Block));
  // Blocks become invalid rather than removed (Section 5.3); the concrete
  // range of a realized block is released for reuse because only valid
  // blocks participate in placement disjointness.
  B.Valid = false;
  Trace.noteFree(P.Block, B.Size, B.Base.has_value(), B.Base);
  return Outcome<Unit>::success(Unit{});
}

Outcome<Unit> BlockMemory::checkAccess(const Ptr &Address) const {
  if (Address.Block == 0)
    return Outcome<Unit>::undefined(
        "memory access through the NULL block");
  if (Address.Block >= Blocks.size())
    return Outcome<Unit>::undefined("access to a nonexistent block");
  const Block &B = Blocks[Address.Block];
  if (!B.Valid)
    return Outcome<Unit>::undefined("access to freed block " +
                                    std::to_string(Address.Block));
  if (Address.Offset >= B.Size)
    return Outcome<Unit>::undefined(
        "access at offset " + wordToString(Address.Offset) +
        " beyond block size " + wordToString(B.Size));
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> BlockMemory::load(Value Address) {
  if (!Address.isPtr())
    return Outcome<Value>::undefined(
        "load through an integer value in a block-structured model");
  const Ptr &P = Address.ptr();
  if (Outcome<Unit> Check = checkAccess(P); !Check)
    return Check.propagate<Value>();
  Trace.noteLoad(P.Block, P.Offset, std::nullopt);
  return Outcome<Value>::success(Blocks[P.Block].Contents[P.Offset]);
}

Outcome<Unit> BlockMemory::store(Value Address, Value V) {
  if (!Address.isPtr())
    return Outcome<Unit>::undefined(
        "store through an integer value in a block-structured model");
  const Ptr &P = Address.ptr();
  if (Outcome<Unit> Check = checkAccess(P); !Check)
    return Check;
  Blocks[P.Block].Contents[P.Offset] = V;
  Trace.noteStore(P.Block, P.Offset, std::nullopt);
  return Outcome<Unit>::success(Unit{});
}

bool BlockMemory::isValidAddress(const Ptr &Address) const {
  if (Address.Block >= Blocks.size())
    return false;
  const Block &B = Blocks[Address.Block];
  return B.Valid && Address.Offset < B.Size;
}

std::vector<std::pair<BlockId, Block>> BlockMemory::snapshot() const {
  std::vector<std::pair<BlockId, Block>> Result;
  Result.reserve(Blocks.size());
  for (BlockId Id = 0; Id < Blocks.size(); ++Id)
    Result.emplace_back(Id, Blocks[Id]);
  return Result;
}

const Block *BlockMemory::getBlock(BlockId Id) const {
  if (Id >= Blocks.size())
    return nullptr;
  return &Blocks[Id];
}
