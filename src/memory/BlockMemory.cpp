//===- memory/BlockMemory.cpp ---------------------------------------------===//

#include "memory/BlockMemory.h"

#include <algorithm>
#include <cstring>

using namespace qcm;

void BlockMemory::installNullBlock(std::optional<Word> NullBlockBase) {
  // Block 0: the NULL block. m(0) = (v, p, n, c) with v = true, p = 0,
  // n = 1 (Section 4).
  LiveBlock NullBlock;
  NullBlock.Valid = true;
  NullBlock.HasBase = NullBlockBase.has_value();
  NullBlock.Base = NullBlockBase.value_or(0);
  NullBlock.Size = 1;
  NullBlock.Data = Slab.allocate(1);
  NullBlock.Data[0] = Value::makeInt(0);
  Blocks.push_back(NullBlock);
}

BlockMemory::BlockMemory(MemoryConfig Config,
                         std::optional<Word> NullBlockBase)
    : Memory(Config) {
  installNullBlock(NullBlockBase);
}

void BlockMemory::resetBlocks(std::optional<Word> NullBlockBase) {
  Blocks.clear();
  Slab.reset();
  installNullBlock(NullBlockBase);
  resetTraceForReuse();
}

void BlockMemory::copyBlocksFrom(const BlockMemory &Other) {
  Blocks = Other.Blocks;
  Slab.reset();
  for (LiveBlock &B : Blocks) {
    Value *Span = Slab.allocate(B.Size);
    std::copy(B.Data, B.Data + B.Size, Span);
    B.Data = Span;
  }
}

Outcome<Value> BlockMemory::allocate(Word NumWords) {
  if (NumWords == 0)
    return Outcome<Value>::undefined("malloc of zero words");
  // All blocks are born logical; realization, if any, happens at cast time
  // (Section 3.4). Logical allocation never exhausts memory.
  LiveBlock B;
  B.Valid = true;
  B.Size = NumWords;
  B.Data = Slab.allocate(NumWords);
  std::fill(B.Data, B.Data + NumWords, Value::makeInt(0));
  BlockId Id = static_cast<BlockId>(Blocks.size());
  Blocks.push_back(B);
  Trace.noteAlloc(Id, NumWords, std::nullopt);
  return Outcome<Value>::success(Value::makePtr(Id, 0));
}

Outcome<Unit> BlockMemory::deallocate(Value Pointer) {
  if (!Pointer.isInt() && Pointer.ptr().isNull())
    return Outcome<Unit>::success(Unit{}); // free(NULL) is a no-op.
  if (!Pointer.isPtr())
    return Outcome<Unit>::undefined(
        "free of an integer value in a block-structured model");
  const Ptr P = Pointer.ptr();
  if (P.Block >= Blocks.size())
    return Outcome<Unit>::undefined("free of a nonexistent block");
  if (P.Offset != 0)
    return Outcome<Unit>::undefined(
        "free of a pointer that is not the start of its block");
  LiveBlock &B = Blocks[P.Block];
  if (!B.Valid)
    return Outcome<Unit>::undefined("double free of block " +
                                    std::to_string(P.Block));
  // Blocks become invalid rather than removed (Section 5.3); the concrete
  // range of a realized block is released for reuse because only valid
  // blocks participate in placement disjointness.
  onFree(P.Block, B);
  B.Valid = false;
  Trace.noteFree(P.Block, B.Size, B.HasBase,
                 B.HasBase ? std::optional<Word>(B.Base) : std::nullopt);
  return Outcome<Unit>::success(Unit{});
}

Fault BlockMemory::accessFault(const Ptr &Address) const {
  if (Address.Block == 0)
    return Fault::undefined("memory access through the NULL block");
  if (Address.Block >= Blocks.size())
    return Fault::undefined("access to a nonexistent block");
  const LiveBlock &B = Blocks[Address.Block];
  if (!B.Valid)
    return Fault::undefined("access to freed block " +
                            std::to_string(Address.Block));
  assert(Address.Offset >= B.Size && "accessFault on an accessible cell");
  return Fault::undefined("access at offset " + wordToString(Address.Offset) +
                          " beyond block size " + wordToString(B.Size));
}

Outcome<Value> BlockMemory::load(Value Address) {
  if (!Address.isPtr())
    return Outcome<Value>::undefined(
        "load through an integer value in a block-structured model");
  const Ptr P = Address.ptr();
  const LiveBlock *B = accessibleBlock(P);
  if (!B)
    return accessFault(P);
  Trace.noteLoad(P.Block, P.Offset, std::nullopt);
  return Outcome<Value>::success(B->Data[P.Offset]);
}

Outcome<Unit> BlockMemory::store(Value Address, Value V) {
  if (!Address.isPtr())
    return Outcome<Unit>::undefined(
        "store through an integer value in a block-structured model");
  const Ptr P = Address.ptr();
  LiveBlock *B = accessibleBlock(P);
  if (!B)
    return accessFault(P);
  B->Data[P.Offset] = V;
  Trace.noteStore(P.Block, P.Offset, std::nullopt);
  return Outcome<Unit>::success(Unit{});
}

bool BlockMemory::isValidAddress(const Ptr &Address) const {
  if (Address.Block >= Blocks.size())
    return false;
  const LiveBlock &B = Blocks[Address.Block];
  return B.Valid && Address.Offset < B.Size;
}

Block BlockMemory::materialize(BlockId Id) const {
  const LiveBlock &L = Blocks[Id];
  Block B;
  B.Valid = L.Valid;
  if (L.HasBase)
    B.Base = L.Base;
  B.Size = L.Size;
  B.Contents.assign(L.Data, L.Data + L.Size);
  return B;
}

std::vector<std::pair<BlockId, Block>> BlockMemory::snapshot() const {
  std::vector<std::pair<BlockId, Block>> Result;
  Result.reserve(Blocks.size());
  for (BlockId Id = 0; Id < Blocks.size(); ++Id)
    Result.emplace_back(Id, materialize(Id));
  return Result;
}

std::optional<Block> BlockMemory::getBlock(BlockId Id) const {
  if (Id >= Blocks.size())
    return std::nullopt;
  return materialize(Id);
}
