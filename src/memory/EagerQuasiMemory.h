//===- memory/EagerQuasiMemory.h - The rejected Section 3.4 design -*- C++ -*-//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alternative design the paper *rejects* in Section 3.4, implemented
/// as an ablation: blocks are nondeterministically allocated either
/// concrete or logical **at allocation time**, and casting a pointer into a
/// logical block raises out-of-memory-type behavior (no behavior) instead
/// of realizing it.
///
/// The paper's argument against it, which bench_ablation reproduces
/// executably: this design "would add unintuitive failures" and does not
/// allow ownership-transfer optimizations like Figure 3 — when the target's
/// block is born concrete the source's must be too (else hash_put's cast
/// has no behavior in the source while the target succeeds), so the block
/// is never privately owned and constant propagation across bar() cannot be
/// justified; a guessing context then distinguishes the programs.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_EAGERQUASIMEMORY_H
#define QCM_MEMORY_EAGERQUASIMEMORY_H

#include "memory/AddressIndex.h"
#include "memory/BlockMemory.h"
#include "memory/Placement.h"

#include <functional>

namespace qcm {

/// Decides, per allocation, whether the block is born concrete. All
/// nondeterminism is explicit so behavior sets stay enumerable.
class KindOracle {
public:
  virtual ~KindOracle();
  virtual bool nextIsConcrete() = 0;
  virtual std::unique_ptr<KindOracle> clone() const = 0;
  /// Rewinds to the initial decision stream (reset-and-reuse protocol).
  virtual void reset() {}
};

/// Every block concrete (degenerates to a concrete model with block-tagged
/// pointers) or every block logical (casts never succeed).
class ConstantKindOracle : public KindOracle {
public:
  explicit ConstantKindOracle(bool Concrete) : Concrete(Concrete) {}
  bool nextIsConcrete() override { return Concrete; }
  std::unique_ptr<KindOracle> clone() const override {
    return std::make_unique<ConstantKindOracle>(Concrete);
  }

private:
  bool Concrete;
};

/// Plays back a fixed concrete/logical decision sequence; exhaustion
/// repeats the last decision (or logical if empty).
class FixedKindOracle : public KindOracle {
public:
  explicit FixedKindOracle(std::vector<bool> Decisions)
      : Decisions(std::move(Decisions)) {}
  bool nextIsConcrete() override {
    if (Decisions.empty())
      return false;
    bool D = Decisions[std::min(Next, Decisions.size() - 1)];
    ++Next;
    return D;
  }
  std::unique_ptr<KindOracle> clone() const override {
    auto Copy = std::make_unique<FixedKindOracle>(Decisions);
    Copy->Next = Next;
    return Copy;
  }
  void reset() override { Next = 0; }

private:
  std::vector<bool> Decisions;
  size_t Next = 0;
};

/// The Section 3.4 alternative model.
class EagerQuasiMemory : public BlockMemory {
public:
  EagerQuasiMemory(MemoryConfig Config,
                   std::unique_ptr<KindOracle> Kinds = nullptr,
                   std::unique_ptr<PlacementOracle> Placement = nullptr);

  ModelKind kind() const override { return ModelKind::EagerQuasi; }

  /// Allocation decides the block's nature once and for all; a concrete
  /// decision can fail with out-of-memory right here (the finite space is
  /// consumed eagerly).
  Outcome<Value> allocate(Word NumWords) override;

  Outcome<Value> castPtrToInt(Value Pointer) override;
  Outcome<Value> castIntToPtr(Value Integer) override;

  std::unique_ptr<Memory> clone() const override;
  std::optional<std::string> checkConsistency() const override;

  /// Reset-and-reuse: returns to the freshly-constructed state keeping
  /// storage capacity. Null arguments keep the current oracles, rewound to
  /// their initial decision streams.
  void reset(std::unique_ptr<KindOracle> Kinds = nullptr,
             std::unique_ptr<PlacementOracle> Placement = nullptr);

protected:
  void onFree(BlockId Id, const LiveBlock &B) override;

private:
  std::unique_ptr<KindOracle> Kinds;
  std::unique_ptr<PlacementOracle> Placement;
  /// Valid concretely-born blocks by concrete range (NULL block excluded).
  AddressIndex Index;
};

} // namespace qcm

#endif // QCM_MEMORY_EAGERQUASIMEMORY_H
