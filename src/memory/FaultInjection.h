//===- memory/FaultInjection.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic resource-exhaustion injection for the memory models.
///
/// The paper's out-of-memory transitions — allocation failure in the
/// concrete model (Section 2.1), realization failure at cast time in the
/// quasi-concrete model (Section 3.4) — almost never fire under the default
/// 2^32-word address space, which makes the "no behavior" machinery
/// (Section 2.3, item 4) the least-exercised code in the tree. A FaultPlan
/// makes exhaustion a first-class, schedulable event: fail the Nth
/// allocation, fail the Nth pointer-to-integer cast, fail the Nth memory
/// operation, or shrink the concrete space — all deterministically, so
/// injected runs are exactly reproducible.
///
/// FaultInjectingMemory is a decorator over any Memory: models keep their
/// hot paths untouched, and a run without a plan never constructs the
/// wrapper at all (zero overhead, like the no-sink trace path). Building
/// with -DQCM_FAULT_INJECTION_ENABLED=0 additionally compiles the wrapping
/// itself out: wrapWithFaultInjection becomes the identity.
///
/// An injected failure is a Fault::OutOfMemory whose reason starts with
/// "injected" — the taxonomy is unchanged (OOM is still "no behavior", the
/// execution observes only its event prefix), only the schedule is forced.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_FAULTINJECTION_H
#define QCM_MEMORY_FAULTINJECTION_H

#include "memory/Memory.h"

#include <optional>
#include <string>

/// Compile-time master switch: 0 makes wrapWithFaultInjection the identity,
/// so no decorated memory can exist in the binary.
#ifndef QCM_FAULT_INJECTION_ENABLED
#define QCM_FAULT_INJECTION_ENABLED 1
#endif

namespace qcm {

/// A deterministic exhaustion schedule. Empty (all fields unset) means
/// "inject nothing". Ordinals are 1-based and count *calls*, successful or
/// not, from memory construction — global and entry-argument allocations
/// included, so a plan pins one exact operation of one exact run.
struct FaultPlan {
  /// Fail the Nth allocate() with out-of-memory.
  std::optional<uint64_t> FailAllocation;
  /// Fail the Nth castPtrToInt() with out-of-memory (the quasi-concrete
  /// model's realization point; counted on every model for uniformity).
  std::optional<uint64_t> FailCast;
  /// Fail the Nth memory operation of any kind (allocate, deallocate,
  /// load, store, either cast) with out-of-memory.
  std::optional<uint64_t> FailOperation;
  /// Shrink the concrete address space to this many words at memory
  /// construction (applied by makeMemory, not by the decorator; recorded
  /// here so one FaultPlan is a complete, printable chaos configuration).
  std::optional<uint64_t> ShrinkAddressWords;

  bool empty() const {
    return !FailAllocation && !FailCast && !FailOperation &&
           !ShrinkAddressWords;
  }

  /// True when the plan carries a trigger the decorator must watch
  /// (ShrinkAddressWords alone needs no wrapper).
  bool needsDecorator() const {
    return FailAllocation || FailCast || FailOperation;
  }

  friend bool operator==(const FaultPlan &A, const FaultPlan &B) {
    return A.FailAllocation == B.FailAllocation && A.FailCast == B.FailCast &&
           A.FailOperation == B.FailOperation &&
           A.ShrinkAddressWords == B.ShrinkAddressWords;
  }

  /// Round-trippable spec: '+'-joined clauses "alloc:N", "cast:N", "op:N",
  /// "words:K" (e.g. "alloc:3+words:64"); the empty plan prints "none".
  std::string toString() const;

  /// Parses the toString() syntax. Returns nullopt and sets \p Error on a
  /// malformed spec.
  static std::optional<FaultPlan> parse(const std::string &Spec,
                                        std::string &Error);

  static FaultPlan failAllocation(uint64_t N) {
    FaultPlan P;
    P.FailAllocation = N;
    return P;
  }
  static FaultPlan failCast(uint64_t N) {
    FaultPlan P;
    P.FailCast = N;
    return P;
  }
  static FaultPlan failOperation(uint64_t N) {
    FaultPlan P;
    P.FailOperation = N;
    return P;
  }
};

/// Memory decorator that executes a FaultPlan. Forwards every operation to
/// the wrapped model, except that operations the plan targets return
/// Fault::OutOfMemory without reaching the model. The decorator is
/// model-transparent: kind(), snapshots, consistency checks, and the trace
/// (sink, statistics, step binding) are the inner model's.
class FaultInjectingMemory : public Memory {
public:
  FaultInjectingMemory(std::unique_ptr<Memory> Inner, FaultPlan Plan);

  ModelKind kind() const override { return Inner->kind(); }

  Outcome<Value> allocate(Word NumWords) override;
  Outcome<Unit> deallocate(Value Pointer) override;
  Outcome<Value> load(Value Address) override;
  Outcome<Unit> store(Value Address, Value V) override;
  Outcome<Value> castPtrToInt(Value Pointer) override;
  Outcome<Value> castIntToPtr(Value Integer) override;

  bool isValidAddress(const Ptr &Address) const override;
  std::vector<std::pair<BlockId, Block>> snapshot() const override;
  std::optional<Block> getBlock(BlockId Id) const override;
  std::unique_ptr<Memory> clone() const override;
  std::optional<std::string> checkConsistency() const override;

  MemTrace &trace() override { return Inner->trace(); }
  const MemTrace &trace() const override { return Inner->trace(); }
  Memory *underlying() override { return Inner->underlying(); }

  const FaultPlan &plan() const { return Plan; }

  /// Rewinds the injection counters to the freshly-constructed state; the
  /// decorator's piece of the reset-and-reuse protocol (the caller resets
  /// the inner model through its typed reset()).
  void rewind();

  /// Operations seen so far, by trigger class; lets callers size an
  /// exhaustion sweep without rerunning.
  uint64_t allocationsSeen() const { return AllocSeen; }
  uint64_t castsSeen() const { return CastSeen; }
  uint64_t operationsSeen() const { return OpsSeen; }

  /// True once some trigger of the plan has actually fired.
  bool fired() const { return Fired; }

private:
  /// Returns the injected fault if this operation (1-based ordinals already
  /// incremented by the caller) is targeted.
  std::optional<Fault> injectAt(std::optional<uint64_t> Ordinal,
                                uint64_t Seen, const char *What);

  std::unique_ptr<Memory> Inner;
  FaultPlan Plan;
  uint64_t AllocSeen = 0;
  uint64_t CastSeen = 0;
  uint64_t OpsSeen = 0;
  bool Fired = false;
};

/// Wraps \p Inner so that \p Plan is executed. Returns \p Inner unchanged
/// when the plan has no decorator-level trigger, or when fault injection is
/// compiled out.
std::unique_ptr<Memory> wrapWithFaultInjection(std::unique_ptr<Memory> Inner,
                                               const FaultPlan &Plan);

} // namespace qcm

#endif // QCM_MEMORY_FAULTINJECTION_H
