//===- memory/Value.h - Semantic values: int32 or logical addr --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value domain of the paper (Section 2.2):
///
///   Val = { i in int32 }  |+|  { (l, i) in BlockID x int32 }
///
/// In the concrete model only the integer injection is inhabited; pointers
/// are plain integers there. In the logical and quasi-concrete models both
/// injections occur.
///
/// Representation: the disjoint union is packed into a single 64-bit tagged
/// word so memory cells, interpreter slots, and event records all move one
/// machine word. This is purely a representation choice — the paper's Val
/// domain is unchanged (see DESIGN.md):
///
///   bit 63      injection tag (1 = pointer)
///   bits 62..32 block id (pointers only; block ids are < 2^31)
///   bits 31..0  offset (pointers) or the integer value
///
/// Integer values therefore have all high bits zero, so bitwise equality of
/// the packed words coincides with structural equality of the domain.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_VALUE_H
#define QCM_MEMORY_VALUE_H

#include "support/Ints.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace qcm {

/// A logical address: block identifier plus word offset within the block.
struct Ptr {
  BlockId Block = 0;
  Word Offset = 0;

  friend bool operator==(const Ptr &A, const Ptr &B) {
    return A.Block == B.Block && A.Offset == B.Offset;
  }

  /// The NULL pointer is the logical address (0, 0) (Section 4).
  bool isNull() const { return Block == 0 && Offset == 0; }

  std::string toString() const;
};

/// A semantic value: either a 32-bit integer or a logical address.
///
/// Default construction yields the integer 0, which is also what freshly
/// allocated memory cells and freshly declared int variables hold (the paper
/// omits indeterminate values as an orthogonal concern; see DESIGN.md).
class Value {
public:
  Value() : Bits(0) {}

  static Value makeInt(Word V) { return Value(static_cast<uint64_t>(V)); }

  static Value makePtr(BlockId Block, Word Offset) {
    assert(Block < (BlockId(1) << 31) && "block id exceeds the 31-bit field");
    return Value(PtrTag | (static_cast<uint64_t>(Block) << 32) |
                 static_cast<uint64_t>(Offset));
  }

  static Value makePtr(Ptr P) { return makePtr(P.Block, P.Offset); }

  /// The NULL pointer value (0, 0).
  static Value null() { return makePtr(0, 0); }

  bool isInt() const { return (Bits & PtrTag) == 0; }
  bool isPtr() const { return (Bits & PtrTag) != 0; }

  Word intValue() const {
    assert(isInt() && "value is not an integer");
    return static_cast<Word>(Bits);
  }

  Ptr ptr() const {
    assert(isPtr() && "value is not a pointer");
    return Ptr{static_cast<BlockId>((Bits >> 32) & 0x7fffffffu),
               static_cast<Word>(Bits)};
  }

  /// Structural equality. Note this is *not* the language-level equality
  /// test, which consults block validity (Section 4); it is used for memory
  /// contents comparison and tests. Because integers zero their high bits
  /// and the tag separates the injections, comparing the packed words is
  /// exactly structural equality on the domain.
  friend bool operator==(const Value &A, const Value &B) {
    return A.Bits == B.Bits;
  }

  std::string toString() const;

private:
  explicit Value(uint64_t Raw) : Bits(Raw) {}

  static constexpr uint64_t PtrTag = uint64_t(1) << 63;

  uint64_t Bits;
};

static_assert(sizeof(Value) == 8,
              "Value must stay a single 8-byte tagged word");

} // namespace qcm

#endif // QCM_MEMORY_VALUE_H
