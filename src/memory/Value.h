//===- memory/Value.h - Semantic values: int32 or logical addr --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value domain of the paper (Section 2.2):
///
///   Val = { i in int32 }  |+|  { (l, i) in BlockID x int32 }
///
/// In the concrete model only the integer injection is inhabited; pointers
/// are plain integers there. In the logical and quasi-concrete models both
/// injections occur.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_VALUE_H
#define QCM_MEMORY_VALUE_H

#include "support/Ints.h"

#include <cassert>
#include <string>

namespace qcm {

/// A logical address: block identifier plus word offset within the block.
struct Ptr {
  BlockId Block = 0;
  Word Offset = 0;

  friend bool operator==(const Ptr &A, const Ptr &B) {
    return A.Block == B.Block && A.Offset == B.Offset;
  }

  /// The NULL pointer is the logical address (0, 0) (Section 4).
  bool isNull() const { return Block == 0 && Offset == 0; }

  std::string toString() const;
};

/// A semantic value: either a 32-bit integer or a logical address.
///
/// Default construction yields the integer 0, which is also what freshly
/// allocated memory cells and freshly declared int variables hold (the paper
/// omits indeterminate values as an orthogonal concern; see DESIGN.md).
class Value {
public:
  Value() : IsPointer(false), IntVal(0) {}

  static Value makeInt(Word V) {
    Value Result;
    Result.IsPointer = false;
    Result.IntVal = V;
    return Result;
  }

  static Value makePtr(BlockId Block, Word Offset) {
    Value Result;
    Result.IsPointer = true;
    Result.PtrVal = Ptr{Block, Offset};
    return Result;
  }

  static Value makePtr(Ptr P) { return makePtr(P.Block, P.Offset); }

  /// The NULL pointer value (0, 0).
  static Value null() { return makePtr(0, 0); }

  bool isInt() const { return !IsPointer; }
  bool isPtr() const { return IsPointer; }

  Word intValue() const {
    assert(isInt() && "value is not an integer");
    return IntVal;
  }

  const Ptr &ptr() const {
    assert(isPtr() && "value is not a pointer");
    return PtrVal;
  }

  /// Structural equality. Note this is *not* the language-level equality
  /// test, which consults block validity (Section 4); it is used for memory
  /// contents comparison and tests.
  friend bool operator==(const Value &A, const Value &B) {
    if (A.IsPointer != B.IsPointer)
      return false;
    if (A.IsPointer)
      return A.PtrVal == B.PtrVal;
    return A.IntVal == B.IntVal;
  }

  std::string toString() const;

private:
  bool IsPointer;
  Word IntVal = 0;
  Ptr PtrVal;
};

} // namespace qcm

#endif // QCM_MEMORY_VALUE_H
