//===- memory/EagerQuasiMemory.cpp ----------------------------------------===//

#include "memory/EagerQuasiMemory.h"

#include <algorithm>

using namespace qcm;

KindOracle::~KindOracle() = default;

EagerQuasiMemory::EagerQuasiMemory(MemoryConfig Config,
                                   std::unique_ptr<KindOracle> Kinds,
                                   std::unique_ptr<PlacementOracle> Placement)
    : BlockMemory(Config, /*NullBlockBase=*/0), Kinds(std::move(Kinds)),
      Placement(std::move(Placement)) {
  if (!this->Kinds)
    this->Kinds = std::make_unique<ConstantKindOracle>(false);
  if (!this->Placement)
    this->Placement = std::make_unique<FirstFitOracle>();
}

void EagerQuasiMemory::reset(std::unique_ptr<KindOracle> NewKinds,
                             std::unique_ptr<PlacementOracle> NewPlacement) {
  resetBlocks(/*NullBlockBase=*/0);
  Index.clear();
  if (NewKinds)
    Kinds = std::move(NewKinds);
  else
    Kinds->reset();
  if (NewPlacement)
    Placement = std::move(NewPlacement);
  else
    Placement->reset();
}

void EagerQuasiMemory::onFree(BlockId Id, const LiveBlock &B) {
  if (Id != 0 && B.HasBase)
    Index.erase(B.Base);
}

Outcome<Value> EagerQuasiMemory::allocate(Word NumWords) {
  if (NumWords == 0)
    return Outcome<Value>::undefined("malloc of zero words");
  bool Concrete = Kinds->nextIsConcrete();
  Word ConcreteBase = 0;
  if (Concrete) {
    std::vector<FreeInterval> Free =
        Index.freeIntervals(config().AddressWords);
    std::optional<Word> Base = Placement->choose(NumWords, Free);
    if (!Base) {
      Trace.noteAllocFailure(NumWords);
      return Outcome<Value>::outOfMemory(
          "no concrete placement for an eagerly-concrete allocation");
    }
    ConcreteBase = *Base;
  }
  LiveBlock B;
  B.Valid = true;
  B.Size = NumWords;
  B.HasBase = Concrete;
  B.Base = ConcreteBase;
  B.Data = Slab.allocate(NumWords);
  std::fill(B.Data, B.Data + NumWords, Value::makeInt(0));
  BlockId Id = static_cast<BlockId>(Blocks.size());
  Blocks.push_back(B);
  if (Concrete)
    Index.insert(ConcreteBase, NumWords, Id);
  Trace.noteAlloc(Id, NumWords,
                  Concrete ? std::optional<Word>(ConcreteBase)
                           : std::nullopt);
  return Outcome<Value>::success(Value::makePtr(Id, 0));
}

Outcome<Value> EagerQuasiMemory::castPtrToInt(Value Pointer) {
  if (!Pointer.isPtr())
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an integer value");
  const Ptr P = Pointer.ptr();
  if (P.Block >= Blocks.size())
    return Outcome<Value>::undefined("cast of a nonexistent block");
  if (!isValidAddress(P))
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an invalid address " + P.toString());
  const LiveBlock &B = Blocks[P.Block];
  if (!B.HasBase)
    // The Section 3.4 design point: the block was (nondeterministically)
    // allocated logical, so the cast has out-of-memory-type behavior — "the
    // allocator chose the wrong kind of block".
    return Outcome<Value>::outOfMemory(
        "cast of a pointer into a logically-allocated block (eager model)");
  Word Addr = wrapAdd(B.Base, P.Offset);
  Trace.noteCastToInt(P.Block, P.Offset, Addr, /*RealizedNow=*/false);
  return Outcome<Value>::success(Value::makeInt(Addr));
}

Outcome<Value> EagerQuasiMemory::castIntToPtr(Value Integer) {
  if (!Integer.isInt())
    return Outcome<Value>::undefined(
        "integer-to-pointer cast of a logical address");
  Word I = Integer.intValue();
  // As in the quasi-concrete model: the NULL block supplies the preimage
  // of 0; every other preimage is an index lookup over the disjoint
  // concrete ranges.
  if (I == 0) {
    Trace.noteCastToPtr(0, 0, 0);
    return Outcome<Value>::success(Value::makePtr(0, 0));
  }
  if (const AddressIndex::Entry *E = Index.find(I)) {
    Trace.noteCastToPtr(E->Id, I - E->Base, I);
    return Outcome<Value>::success(Value::makePtr(E->Id, I - E->Base));
  }
  return Outcome<Value>::undefined(
      "integer-to-pointer cast of " + wordToString(I) +
      " which reifies no valid address");
}

std::unique_ptr<Memory> EagerQuasiMemory::clone() const {
  auto Copy = std::make_unique<EagerQuasiMemory>(config(), Kinds->clone(),
                                                 Placement->clone());
  Copy->copyBlocksFrom(*this);
  Copy->Index = Index;
  return Copy;
}

std::optional<std::string> EagerQuasiMemory::checkConsistency() const {
  if (Blocks.empty() || !Blocks[0].Valid || Blocks[0].Size != 1 ||
      !Blocks[0].HasBase || Blocks[0].Base != 0)
    return "NULL block is damaged";
  const uint64_t Limit = config().AddressWords - 1;
  uint64_t PrevEnd = 0;
  bool First = true;
  for (const AddressIndex::Entry &E : Index.entries()) {
    if (E.Base == 0)
      return "concrete block includes address 0";
    uint64_t End = static_cast<uint64_t>(E.Base) + E.Size;
    if (End > Limit)
      return "concrete block includes the maximum address";
    if (!First && E.Base < PrevEnd)
      return "concrete blocks overlap at " + wordToString(E.Base);
    PrevEnd = End;
    First = false;
    if (E.Id >= Blocks.size())
      return "index entry for nonexistent block " + std::to_string(E.Id);
    const LiveBlock &B = Blocks[E.Id];
    if (!B.Valid || !B.HasBase || B.Base != E.Base || B.Size != E.Size)
      return "index entry disagrees with block " + std::to_string(E.Id);
  }
  size_t ConcreteValid = 0;
  for (BlockId Id = 1; Id < Blocks.size(); ++Id)
    if (Blocks[Id].Valid && Blocks[Id].HasBase)
      ++ConcreteValid;
  if (ConcreteValid != Index.size())
    return "address index is missing concrete blocks";
  return std::nullopt;
}
