//===- memory/EagerQuasiMemory.cpp ----------------------------------------===//

#include "memory/EagerQuasiMemory.h"

using namespace qcm;

KindOracle::~KindOracle() = default;

EagerQuasiMemory::EagerQuasiMemory(MemoryConfig Config,
                                   std::unique_ptr<KindOracle> Kinds,
                                   std::unique_ptr<PlacementOracle> Placement)
    : BlockMemory(Config, /*NullBlockBase=*/0), Kinds(std::move(Kinds)),
      Placement(std::move(Placement)) {
  if (!this->Kinds)
    this->Kinds = std::make_unique<ConstantKindOracle>(false);
  if (!this->Placement)
    this->Placement = std::make_unique<FirstFitOracle>();
}

std::map<Word, Word> EagerQuasiMemory::occupiedRanges() const {
  std::map<Word, Word> Ranges;
  for (BlockId Id = 1; Id < Blocks.size(); ++Id) {
    const Block &B = Blocks[Id];
    if (B.Valid && B.Base)
      Ranges.emplace(*B.Base, B.Size);
  }
  return Ranges;
}

Outcome<Value> EagerQuasiMemory::allocate(Word NumWords) {
  if (NumWords == 0)
    return Outcome<Value>::undefined("malloc of zero words");
  Block B;
  B.Valid = true;
  B.Size = NumWords;
  B.Contents.assign(NumWords, Value::makeInt(0));
  if (Kinds->nextIsConcrete()) {
    std::vector<FreeInterval> Free =
        computeFreeIntervals(occupiedRanges(), config().AddressWords);
    std::optional<Word> Base = Placement->choose(NumWords, Free);
    if (!Base) {
      Trace.noteAllocFailure(NumWords);
      return Outcome<Value>::outOfMemory(
          "no concrete placement for an eagerly-concrete allocation");
    }
    B.Base = *Base;
  }
  BlockId Id = static_cast<BlockId>(Blocks.size());
  std::optional<Word> Base = B.Base;
  Blocks.push_back(std::move(B));
  Trace.noteAlloc(Id, NumWords, Base);
  return Outcome<Value>::success(Value::makePtr(Id, 0));
}

Outcome<Value> EagerQuasiMemory::castPtrToInt(Value Pointer) {
  if (!Pointer.isPtr())
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an integer value");
  const Ptr &P = Pointer.ptr();
  if (P.Block >= Blocks.size())
    return Outcome<Value>::undefined("cast of a nonexistent block");
  if (!isValidAddress(P))
    return Outcome<Value>::undefined(
        "pointer-to-integer cast of an invalid address " + P.toString());
  const Block &B = Blocks[P.Block];
  if (!B.Base)
    // The Section 3.4 design point: the block was (nondeterministically)
    // allocated logical, so the cast has out-of-memory-type behavior — "the
    // allocator chose the wrong kind of block".
    return Outcome<Value>::outOfMemory(
        "cast of a pointer into a logically-allocated block (eager model)");
  Word Addr = wrapAdd(*B.Base, P.Offset);
  Trace.noteCastToInt(P.Block, P.Offset, Addr, /*RealizedNow=*/false);
  return Outcome<Value>::success(Value::makeInt(Addr));
}

Outcome<Value> EagerQuasiMemory::castIntToPtr(Value Integer) {
  if (!Integer.isInt())
    return Outcome<Value>::undefined(
        "integer-to-pointer cast of a logical address");
  Word I = Integer.intValue();
  for (BlockId Id = 0; Id < Blocks.size(); ++Id) {
    const Block &B = Blocks[Id];
    if (!B.Valid || !B.Base)
      continue;
    if (B.containsAddress(I)) {
      Trace.noteCastToPtr(Id, I - *B.Base, I);
      return Outcome<Value>::success(Value::makePtr(Id, I - *B.Base));
    }
  }
  return Outcome<Value>::undefined(
      "integer-to-pointer cast of " + wordToString(I) +
      " which reifies no valid address");
}

std::unique_ptr<Memory> EagerQuasiMemory::clone() const {
  auto Copy = std::make_unique<EagerQuasiMemory>(config(), Kinds->clone(),
                                                 Placement->clone());
  Copy->Blocks = Blocks;
  return Copy;
}

std::optional<std::string> EagerQuasiMemory::checkConsistency() const {
  if (Blocks.empty() || !Blocks[0].Valid || Blocks[0].Size != 1 ||
      !Blocks[0].Base || *Blocks[0].Base != 0)
    return "NULL block is damaged";
  const uint64_t Limit = config().AddressWords - 1;
  uint64_t PrevEnd = 0;
  bool First = true;
  for (const auto &[Base, Size] : occupiedRanges()) {
    if (Base == 0)
      return "concrete block includes address 0";
    uint64_t End = static_cast<uint64_t>(Base) + Size;
    if (End > Limit)
      return "concrete block includes the maximum address";
    if (!First && Base < PrevEnd)
      return "concrete blocks overlap at " + wordToString(Base);
    PrevEnd = End;
    First = false;
  }
  return std::nullopt;
}
