//===- memory/TwoPhaseMemory.h - Two-phase infinite/finite model -*- C++ -*-==//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-phase infinite/finite memory model of Beck, Yoon, Chen, Zakowski
/// and Zdancewic, "A Two-Phase Infinite/Finite Low-Level Memory Model"
/// (arXiv 2404.16143) — the direct successor to the quasi-concrete model,
/// reconciling integer-pointer casts with finite memory by splitting every
/// execution into two regimes:
///
///   phase 1 (infinite): allocation is purely logical, blocks have no
///     concrete addresses, and malloc never fails — exactly the CompCert-
///     style infinite model. Integer-to-pointer casts of nonzero integers
///     are undefined (nothing is concrete yet).
///
///   the transition: the *first* pointer-to-integer cast of a valid pointer
///     concretizes the whole memory at once — every live valid block
///     (in allocation order) is assigned a concrete base via the placement
///     oracle. If any block cannot be placed the cast is out-of-memory.
///
///   phase 2 (finite): memory behaves concretely-at-birth — each new
///     allocation immediately claims a concrete range (and can exhaust the
///     space), and both cast directions resolve through the address index.
///
/// Contrast with the quasi-concrete model, which concretizes one block per
/// cast: here a single cast pins down *all* live blocks, so even a block
/// whose pointer is never cast acquires an observable concrete footprint
/// once any cast happens. Exhaustion (out-of-memory) is reachable only at
/// or after the transition — never in phase 1.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_TWOPHASEMEMORY_H
#define QCM_MEMORY_TWOPHASEMEMORY_H

#include "memory/AddressIndex.h"
#include "memory/BlockMemory.h"
#include "memory/Placement.h"

namespace qcm {

/// The two-phase infinite/finite model.
class TwoPhaseMemory : public BlockMemory {
public:
  /// Creates a two-phase memory in phase 1. \p Oracle decides concrete
  /// placement at and after the transition; the default is first-fit.
  explicit TwoPhaseMemory(MemoryConfig Config,
                          std::unique_ptr<PlacementOracle> Oracle = nullptr);

  ModelKind kind() const override { return ModelKind::TwoPhase; }

  /// Phase 1: infinite logical allocation (never fails). Phase 2: claims a
  /// concrete range at birth and fails with out-of-memory when the oracle
  /// finds no placement.
  Outcome<Value> allocate(Word NumWords) override;

  Outcome<Value> castPtrToInt(Value Pointer) override;
  Outcome<Value> castIntToPtr(Value Integer) override;

  std::unique_ptr<Memory> clone() const override;
  std::optional<std::string> checkConsistency() const override;

  /// Reset-and-reuse: returns to the freshly-constructed phase-1 state
  /// (one NULL block, empty index, zeroed statistics) keeping storage
  /// capacity. \p Oracle replaces the placement oracle; passing nullptr
  /// keeps the current oracle and rewinds its decision stream.
  void reset(std::unique_ptr<PlacementOracle> Oracle = nullptr);

  /// True once the transition has happened.
  bool inFinitePhase() const { return FinitePhase; }

  /// Number of valid concretized blocks, excluding the NULL block.
  size_t numConcreteBlocks() const { return Index.size(); }

protected:
  void onFree(BlockId Id, const LiveBlock &B) override;

private:
  /// The transition: concretizes every live valid non-NULL block in
  /// allocation order. Any placement failure is out-of-memory (and leaves
  /// the memory mid-transition; the interpreter stops on OOM, so partial
  /// concretization is never observed by a continuing run).
  Outcome<Unit> enterFinitePhase();

  std::unique_ptr<PlacementOracle> Oracle;
  /// Valid concretized blocks by concrete range (NULL block excluded; its
  /// range [0, 1) lies outside the usable space).
  AddressIndex Index;
  bool FinitePhase = false;
};

} // namespace qcm

#endif // QCM_MEMORY_TWOPHASEMEMORY_H
