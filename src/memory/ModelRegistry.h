//===- memory/ModelRegistry.h - The single model-identity table -*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model registry: one descriptor per ModelKind carrying everything any
/// other layer needs to know about a model — its names (prose, CLI-short,
/// alias), how to construct and reset an instance, which fault-injection
/// points exhaust it, and the capability flags the interpreter, refinement
/// checker, and pass registry branch on. Every `switch (ModelKind)` in the
/// codebase collapses into a lookup here; adding a model means adding one
/// enum value, one descriptor row, and the model's own files — nothing
/// else, and the static_assert below turns a forgotten row into a compile
/// error rather than a silent default.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_MODELREGISTRY_H
#define QCM_MEMORY_MODELREGISTRY_H

#include "memory/EagerQuasiMemory.h"
#include "memory/LogicalMemory.h"
#include "memory/Memory.h"
#include "memory/Placement.h"

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qcm {

/// Number of registered models. The registry table is a std::array of
/// exactly this size and the assertion ties it to the enum: extending
/// ModelKind without growing the table (or vice versa) fails to compile.
inline constexpr size_t NumModelKinds =
    static_cast<size_t>(ModelKind::TwoPhase) + 1;

/// Everything a model factory may consume. Oracles are passed by ownership
/// (each model takes what it understands and ignores the rest); null
/// oracles mean "model default" at construction and "keep the current
/// oracle, rewound" at reset — exactly the models' own conventions.
struct ModelMakeConfig {
  MemoryConfig MemCfg;
  /// Placement oracle (concrete, quasi-concrete, eager, two-phase).
  std::unique_ptr<PlacementOracle> Oracle;
  /// Kind oracle (eager-quasi only).
  std::unique_ptr<KindOracle> Kinds;
  /// Cast behavior (logical only).
  LogicalMemory::CastBehavior LogicalCasts = LogicalMemory::CastBehavior::Error;
};

/// One registry row.
struct ModelDescriptor {
  ModelKind Kind = ModelKind::Concrete;

  /// The prose name ("quasi-concrete"); what modelKindName() returns, used
  /// in reports, stats renderings, and bench baseline keys.
  const char *ProseName = "";
  /// The CLI-stable short name ("quasi"); what --model flags, metrics
  /// documents, and span labels use.
  const char *ShortName = "";
  /// Optional extra accepted spelling ("quasi-concrete", "two-phase"), or
  /// null. parseModelName accepts ShortName and Alias.
  const char *Alias = nullptr;

  /// Pointer variables (and the model's value domain generally) are plain
  /// integers: NULL initializes to the integer 0, and cross-model
  /// refinement against this model as target compares source pointers to
  /// target integers through a block view (concrete model only).
  bool ValuesFullyConcrete = false;
  /// Blocks can move from logical to concrete during execution (the
  /// quasi-concrete realize step, the two-phase transition).
  bool HasRealization = false;
  /// Some operation can exhaust the finite address space (out-of-memory is
  /// reachable); the logical model alone is infinite.
  bool FiniteSpace = false;
  /// An allocation whose pointer is never cast keeps no concrete footprint,
  /// so dead-allocation elimination and ownership reasoning are claimed to
  /// hold. True for the logical family proper; false for the two-phase
  /// model, whose phase transition concretizes even never-cast blocks.
  bool UncastAllocationsStayLogical = false;
  /// Exhaustion can be forced at an allocation (FaultPlan alloc:N).
  bool InjectAllocation = false;
  /// Exhaustion can be forced at a pointer-to-integer cast (cast:N).
  bool InjectCast = false;

  /// Constructs a fresh instance.
  std::unique_ptr<Memory> (*Make)(ModelMakeConfig &&Config) = nullptr;
  /// Typed reset-and-reuse on an instance previously built by Make.
  void (*Reset)(Memory &Mem, ModelMakeConfig &&Config) = nullptr;
};

static_assert(static_cast<size_t>(ModelKind::Concrete) == 0,
              "the registry table is indexed by ModelKind");

/// The table, indexed by static_cast<size_t>(ModelKind).
const std::array<ModelDescriptor, NumModelKinds> &modelRegistry();

/// The descriptor for \p Kind.
const ModelDescriptor &modelDescriptor(ModelKind Kind);

/// Every ModelKind, in declaration (= registry) order.
const std::array<ModelKind, NumModelKinds> &allModelKinds();

/// Resolves a user-supplied model name: short names and aliases, e.g.
/// "quasi" or "quasi-concrete". Nullopt for unknown names.
std::optional<ModelKind> parseModelName(const std::string &Name);

/// Registered spellings within edit distance 2 of \p Name, closest first —
/// the "did you mean" list for unknown-model diagnostics.
std::vector<std::string> suggestModelNames(const std::string &Name);

/// The comma-separated short names of every model ("concrete, logical,
/// ..."), for usage strings and error messages that enumerate the choices.
std::string allModelShortNames();

} // namespace qcm

#endif // QCM_MEMORY_MODELREGISTRY_H
