//===- support/TestingHooks.cpp -------------------------------------------===//

#include "support/TestingHooks.h"

#if QCM_TESTING_HOOKS

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace {

struct CrashSpec {
  bool Armed = false;
  bool Abort = false;
  std::vector<uint64_t> Cells;
};

CrashSpec parseCrashSpec() {
  CrashSpec Spec;
  const char *At = std::getenv("QCM_CRASH_AT");
  if (!At || !*At)
    return Spec;
  uint64_t Value = 0;
  bool Any = false;
  for (const char *P = At;; ++P) {
    if (*P >= '0' && *P <= '9') {
      Value = Value * 10 + static_cast<uint64_t>(*P - '0');
      Any = true;
      continue;
    }
    if (Any) {
      Spec.Cells.push_back(Value);
      Value = 0;
      Any = false;
    }
    if (!*P)
      break;
  }
  Spec.Armed = !Spec.Cells.empty();
  const char *Kind = std::getenv("QCM_CRASH_KIND");
  Spec.Abort = Kind && std::strcmp(Kind, "abort") == 0;
  return Spec;
}

const CrashSpec &crashSpec() {
  static const CrashSpec Spec = parseCrashSpec();
  return Spec;
}

} // namespace

bool qcm::testingHooksArmed() { return crashSpec().Armed; }

void qcm::maybeCrashAtCell(uint64_t CellIndex) {
  const CrashSpec &Spec = crashSpec();
  if (!Spec.Armed)
    return;
  for (uint64_t Cell : Spec.Cells) {
    if (Cell != CellIndex)
      continue;
    // The note goes to stderr (never the report stream) so a chaos run's
    // log shows which deaths were the canary's.
    std::fprintf(stderr, "[testing-hooks] crashing at cell %llu\n",
                 static_cast<unsigned long long>(CellIndex));
    std::fflush(stderr);
    if (Spec.Abort)
      std::abort();
    std::raise(SIGSEGV);
  }
}

#else

bool qcm::testingHooksArmed() { return false; }

#endif // QCM_TESTING_HOOKS
