//===- support/Ints.cpp ---------------------------------------------------===//

#include "support/Ints.h"

using namespace qcm;

std::string qcm::wordToString(Word A) { return std::to_string(A); }
