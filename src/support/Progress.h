//===- support/Progress.h - Live progress reporting -------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe progress facility for long grid explorations. The checker
/// reports phase boundaries and per-cell completions to an abstract
/// ProgressSink; the stock StderrProgress implementation renders a
/// throttled single status line (done/total, percent, rate, ETA, live
/// fail/timeout/OOM counters) rewritten in place with '\r'. Unlike the
/// span profiler this is always compiled in: it is opt-in UI, costs one
/// virtual call per *merged cell* (not per instruction), and must work in
/// QCM_PROFILE_ENABLED=0 builds.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_PROGRESS_H
#define QCM_SUPPORT_PROGRESS_H

#include "support/Telemetry.h"

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace qcm {

/// Receives progress reports from a long-running checker. All methods may
/// be called from any thread; implementations must be thread-safe. Phases
/// are sequential: beginPhase implies the previous phase is over.
class ProgressSink {
public:
  virtual ~ProgressSink() = default;

  /// Starts a named phase ("grid", "sweep") of \p TotalUnits units; 0 when
  /// the total is unknown up front.
  virtual void beginPhase(const std::string &Name, uint64_t TotalUnits) = 0;

  /// Reports \p Units more units done, of which \p Failed were
  /// counterexamples/errors, \p TimedOut hit the watchdog, and \p Oom ran
  /// out of memory.
  virtual void advance(uint64_t Units, uint64_t Failed, uint64_t TimedOut,
                       uint64_t Oom) = 0;

  /// Ends the current phase (prints a final line for UI sinks).
  virtual void finish() = 0;
};

/// Renders progress as a single stderr status line, rewritten in place and
/// throttled to at most one repaint per ~100ms (the final repaint on
/// finish() always happens, followed by a newline so the line persists).
/// If stderr dies mid-run (closed pipe — the write fails with SIGPIPE
/// ignored per installSignalHygiene) painting stops permanently instead of
/// burning a failed write per cell.
class StderrProgress final : public ProgressSink {
public:
  explicit StderrProgress(std::FILE *Out = stderr) : Out(Out) {}

  void beginPhase(const std::string &Name, uint64_t TotalUnits) override;
  void advance(uint64_t Units, uint64_t Failed, uint64_t TimedOut,
               uint64_t Oom) override;
  void finish() override;

private:
  void repaint(bool Force);

  std::FILE *Out;
  std::mutex Lock;
  std::string Phase;
  uint64_t Total = 0;
  uint64_t Done = 0;
  uint64_t Failed = 0;
  uint64_t TimedOut = 0;
  uint64_t Oom = 0;
  bool Active = false;
  bool Dead = false;
  Stopwatch PhaseClock;
  double LastPaintSeconds = -1.0;
  size_t LastLineLength = 0;
};

} // namespace qcm

#endif // QCM_SUPPORT_PROGRESS_H
