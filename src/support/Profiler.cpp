//===- support/Profiler.cpp - Span recording and Chrome-trace export ------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace qcm;
using namespace qcm::prof;

uint64_t qcm::prof::peakRssBytes() {
#if defined(__linux__)
  // VmHWM is the high-water mark of the resident set, in kB.
  if (std::FILE *In = std::fopen("/proc/self/status", "r")) {
    char Line[256];
    uint64_t Kb = 0;
    bool Found = false;
    while (std::fgets(Line, sizeof(Line), In)) {
      if (std::sscanf(Line, "VmHWM: %llu kB",
                      reinterpret_cast<unsigned long long *>(&Kb)) == 1) {
        Found = true;
        break;
      }
    }
    std::fclose(In);
    if (Found)
      return Kb * 1024;
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Usage;
  if (getrusage(RUSAGE_SELF, &Usage) == 0) {
    // ru_maxrss is kB on Linux, bytes on macOS.
#if defined(__APPLE__)
    return static_cast<uint64_t>(Usage.ru_maxrss);
#else
    return static_cast<uint64_t>(Usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

std::string CategorySummary::toJson() const {
  // Drop trailing empty buckets so short profiles stay readable.
  unsigned Used = BucketCount;
  while (Used > 1 && Buckets[Used - 1] == 0)
    --Used;
  std::string Hist = "[";
  for (unsigned I = 0; I < Used; ++I) {
    if (I)
      Hist += ",";
    Hist += std::to_string(Buckets[I]);
  }
  Hist += "]";
  JsonObject O;
  O.field("category", Category)
      .field("spans", Spans)
      .field("total_us", TotalNs / 1000)
      .field("min_us", MinNs / 1000)
      .field("max_us", MaxNs / 1000)
      .fieldRaw("hist_log2_us", Hist);
  return O.str();
}

#if QCM_PROFILE_ENABLED

namespace {

/// One finished span as stored in a thread's buffer. Strings are owned
/// (span names can be dynamic, e.g. "pass:constprop"); the category is a
/// static string by API contract.
struct SpanRecord {
  std::string Name;
  const char *Category;
  uint64_t StartNs;
  uint64_t DurNs;
  std::string ArgsJson; // "" when the span had no args
};

constexpr size_t ChunkSize = 256;

/// A single thread's chunked span buffer. The owning thread appends; the
/// exporter reads slots [0, Count) after an acquire load. Chunks are never
/// reallocated, so a published slot's address is stable; the Chunks vector
/// itself is guarded by Growth for the rare push_back.
struct ThreadLog {
  uint64_t Tid = 0;
  std::string Name;
  std::vector<std::unique_ptr<SpanRecord[]>> Chunks;
  std::atomic<uint64_t> Count{0};
  std::mutex Growth;

  SpanRecord *slot(uint64_t Index) {
    return &Chunks[Index / ChunkSize][Index % ChunkSize];
  }

  void append(SpanRecord &&R) {
    uint64_t Index = Count.load(std::memory_order_relaxed);
    if (Index % ChunkSize == 0) {
      std::lock_guard<std::mutex> Lock(Growth);
      Chunks.push_back(std::make_unique<SpanRecord[]>(ChunkSize));
    }
    *slot(Index) = std::move(R);
    // Publish: the exporter's acquire load of Count sees the slot write.
    Count.store(Index + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex Lock;
  // shared_ptr so logs survive their thread's exit until export.
  std::vector<std::shared_ptr<ThreadLog>> Logs;
  std::map<std::string, uint64_t> Counters;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

std::atomic<bool> Enabled{false};

Registry &registry() {
  static Registry R; // leaked-at-exit singleton keeps destructor order safe
  return R;
}

ThreadLog &threadLog() {
  thread_local ThreadLog *Log = nullptr;
  if (!Log) {
    auto Fresh = std::make_shared<ThreadLog>();
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Lock);
    Fresh->Tid = R.Logs.size();
    R.Logs.push_back(Fresh);
    Log = Fresh.get();
  }
  return *Log;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - registry().Epoch)
          .count());
}

} // namespace

bool qcm::prof::enabled() {
  return Enabled.load(std::memory_order_relaxed);
}

void qcm::prof::setEnabled(bool On) {
  Enabled.store(On, std::memory_order_relaxed);
}

void qcm::prof::setThreadName(const std::string &Name) {
  // Registering a buffer for a thread that will never record would grow
  // the registry by one entry per pool worker ever spawned; skip while
  // disabled (tools enable profiling before any pool spins up).
  if (!enabled())
    return;
  ThreadLog &Log = threadLog();
  std::lock_guard<std::mutex> Lock(Log.Growth);
  Log.Name = Name;
}

void qcm::prof::counterAdd(const std::string &Name, uint64_t Delta) {
  if (!enabled())
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Lock);
  R.Counters[Name] += Delta;
}

Span::Span(std::string SpanName, const char *Cat)
    : Active(enabled()), Name(std::move(SpanName)), Category(Cat) {
  if (Active)
    StartNs = nowNs();
}

Span::~Span() {
  if (!Active)
    return;
  SpanRecord R;
  R.Name = std::move(Name);
  R.Category = Category;
  R.StartNs = StartNs;
  uint64_t End = nowNs();
  R.DurNs = End > StartNs ? End - StartNs : 0;
  if (HasArgs)
    R.ArgsJson = Args.str();
  threadLog().append(std::move(R));
}

void Span::arg(const char *Key, const std::string &V) {
  if (!Active)
    return;
  Args.field(Key, V);
  HasArgs = true;
}

void Span::arg(const char *Key, uint64_t V) {
  if (!Active)
    return;
  Args.field(Key, V);
  HasArgs = true;
}

void Span::argBool(const char *Key, bool V) {
  if (!Active)
    return;
  Args.fieldBool(Key, V);
  HasArgs = true;
}

namespace {

/// A consistent copy of one thread's log: the records published up to the
/// snapshot instant, plus the track identity. Copied out under the log's
/// Growth mutex so the exporter never touches the Chunks vector while the
/// owner grows it; the acquire load of Count pairs with the owner's release
/// publish so every copied slot is fully written.
struct LogSnapshot {
  uint64_t Tid;
  std::string Name;
  std::vector<SpanRecord> Records;
};

std::vector<LogSnapshot> snapshotLogs() {
  Registry &R = registry();
  std::vector<std::shared_ptr<ThreadLog>> Logs;
  {
    std::lock_guard<std::mutex> Lock(R.Lock);
    Logs = R.Logs;
  }
  std::vector<LogSnapshot> Out;
  Out.reserve(Logs.size());
  for (const auto &Log : Logs) {
    LogSnapshot S;
    S.Tid = Log->Tid;
    uint64_t Count = Log->Count.load(std::memory_order_acquire);
    std::lock_guard<std::mutex> Lock(Log->Growth);
    S.Name = Log->Name;
    S.Records.reserve(Count);
    for (uint64_t I = 0; I < Count; ++I)
      S.Records.push_back(*Log->slot(I));
    Out.push_back(std::move(S));
  }
  return Out;
}

} // namespace

uint64_t qcm::prof::spanCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Lock);
  uint64_t Total = 0;
  for (const auto &Log : R.Logs)
    Total += Log->Count.load(std::memory_order_acquire);
  return Total;
}

std::vector<CategorySummary> qcm::prof::categorySummaries() {
  std::map<std::string, CategorySummary> ByCat;
  for (const LogSnapshot &S : snapshotLogs()) {
    for (const SpanRecord &R : S.Records) {
      CategorySummary &Sum = ByCat[R.Category];
      if (Sum.Category.empty())
        Sum.Category = R.Category;
      if (Sum.Spans == 0 || R.DurNs < Sum.MinNs)
        Sum.MinNs = R.DurNs;
      Sum.MaxNs = std::max(Sum.MaxNs, R.DurNs);
      Sum.Spans += 1;
      Sum.TotalNs += R.DurNs;
      uint64_t Us = R.DurNs / 1000;
      unsigned Bucket = 0;
      while (Us > 1 && Bucket + 1 < CategorySummary::BucketCount) {
        Us >>= 1;
        ++Bucket;
      }
      Sum.Buckets[Bucket] += 1;
    }
  }
  std::vector<CategorySummary> Out;
  Out.reserve(ByCat.size());
  for (auto &[_, Sum] : ByCat)
    Out.push_back(std::move(Sum));
  return Out;
}

std::vector<std::pair<std::string, uint64_t>> qcm::prof::counters() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Lock);
  return {R.Counters.begin(), R.Counters.end()};
}

std::string qcm::prof::renderChromeTrace() {
  std::vector<std::string> Events;
  for (const LogSnapshot &S : snapshotLogs()) {
    // Thread-name metadata first so viewers label the track; default the
    // first-registered thread to "main" (tools register it by profiling
    // setup before any pool spins up).
    std::string Name =
        !S.Name.empty()
            ? S.Name
            : (S.Tid == 0 ? "main" : "thread-" + std::to_string(S.Tid));
    JsonObject Meta;
    Meta.field("ph", "M")
        .field("name", "thread_name")
        .field("pid", uint64_t(1))
        .field("tid", S.Tid)
        .fieldRaw("args", JsonObject().field("name", Name).str());
    Events.push_back(Meta.str());
    for (const SpanRecord &R : S.Records) {
      JsonObject E;
      E.field("ph", "X")
          .field("name", R.Name)
          .field("cat", R.Category)
          .field("pid", uint64_t(1))
          .field("tid", S.Tid)
          .field("ts", R.StartNs / 1000)
          .field("dur", R.DurNs / 1000);
      if (!R.ArgsJson.empty())
        E.fieldRaw("args", R.ArgsJson);
      Events.push_back(E.str());
    }
  }

  std::vector<std::string> Cats;
  for (const CategorySummary &Sum : categorySummaries())
    Cats.push_back(Sum.toJson());
  JsonObject Counters;
  for (const auto &[Name, Value] : counters())
    Counters.field(Name, Value);

  std::string Out = "{\"traceEvents\":";
  Out += jsonArray(Events);
  Out += ",\n\"displayTimeUnit\":\"ms\",\n\"otherData\":";
  JsonObject Other;
  Other.fieldRaw("categories", jsonArray(Cats))
      .fieldRaw("counters", Counters.str())
      .field("peak_rss_bytes", peakRssBytes());
  Out += Other.str();
  Out += "}\n";
  return Out;
}

bool qcm::prof::writeChromeTrace(const std::string &Path,
                                 std::string &Error) {
  return writeTextFile(Path, renderChromeTrace(), Error);
}

void qcm::prof::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Lock);
  for (const auto &Log : R.Logs) {
    std::lock_guard<std::mutex> LogLock(Log->Growth);
    Log->Chunks.clear();
    Log->Count.store(0, std::memory_order_release);
  }
  R.Counters.clear();
  R.Epoch = std::chrono::steady_clock::now();
}

#else // !QCM_PROFILE_ENABLED

// The export entry points stay callable in compiled-out builds so tools
// honoring --profile need no conditional code; they produce a valid,
// empty trace.
std::string qcm::prof::renderChromeTrace() {
  std::string Out = "{\"traceEvents\":[],\n\"displayTimeUnit\":\"ms\",\n"
                    "\"otherData\":";
  JsonObject Other;
  Other.fieldRaw("categories", "[]")
      .fieldRaw("counters", "{}")
      .field("peak_rss_bytes", peakRssBytes());
  Out += Other.str();
  Out += "}\n";
  return Out;
}

bool qcm::prof::writeChromeTrace(const std::string &Path,
                                 std::string &Error) {
  return writeTextFile(Path, renderChromeTrace(), Error);
}

#endif // QCM_PROFILE_ENABLED
