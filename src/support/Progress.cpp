//===- support/Progress.cpp - Throttled stderr status line ----------------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Progress.h"

#include <algorithm>
#include <cinttypes>

using namespace qcm;

void StderrProgress::beginPhase(const std::string &Name,
                                uint64_t TotalUnits) {
  std::lock_guard<std::mutex> Guard(Lock);
  if (Active && !Dead) {
    // Close the previous phase's line before starting a new one.
    repaint(true);
    std::fputc('\n', Out);
  }
  Phase = Name;
  Total = TotalUnits;
  Done = Failed = TimedOut = Oom = 0;
  Active = true;
  PhaseClock.reset();
  LastPaintSeconds = -1.0;
  LastLineLength = 0;
  repaint(true);
}

void StderrProgress::advance(uint64_t Units, uint64_t NewFailed,
                             uint64_t NewTimedOut, uint64_t NewOom) {
  std::lock_guard<std::mutex> Guard(Lock);
  Done += Units;
  Failed += NewFailed;
  TimedOut += NewTimedOut;
  Oom += NewOom;
  repaint(false);
}

void StderrProgress::finish() {
  std::lock_guard<std::mutex> Guard(Lock);
  if (!Active)
    return;
  if (!Dead) {
    repaint(true);
    std::fputc('\n', Out);
    std::fflush(Out);
  }
  Active = false;
}

void StderrProgress::repaint(bool Force) {
  if (Dead)
    return;
  double Now = PhaseClock.seconds();
  if (!Force && LastPaintSeconds >= 0.0 && Now - LastPaintSeconds < 0.1)
    return;
  LastPaintSeconds = Now;

  char Line[256];
  double Rate = Now > 0.0 ? static_cast<double>(Done) / Now : 0.0;
  int N;
  if (Total > 0) {
    double Pct = 100.0 * static_cast<double>(Done) /
                 static_cast<double>(Total);
    double EtaSeconds =
        (Rate > 0.0 && Done < Total)
            ? static_cast<double>(Total - Done) / Rate
            : 0.0;
    N = std::snprintf(Line, sizeof(Line),
                      "[%s] %" PRIu64 "/%" PRIu64
                      " (%.0f%%) %.1f cells/s eta %.0fs"
                      " | fail %" PRIu64 " timeout %" PRIu64 " oom %" PRIu64,
                      Phase.c_str(), Done, Total, Pct, Rate, EtaSeconds,
                      Failed, TimedOut, Oom);
  } else {
    N = std::snprintf(Line, sizeof(Line),
                      "[%s] %" PRIu64 " done %.1f cells/s"
                      " | fail %" PRIu64 " timeout %" PRIu64 " oom %" PRIu64,
                      Phase.c_str(), Done, Rate, Failed, TimedOut, Oom);
  }
  size_t Length = N > 0 ? static_cast<size_t>(N) : 0;
  // Pad with spaces to erase a longer previous line, then rewind.
  std::fputc('\r', Out);
  std::fputs(Line, Out);
  for (size_t I = Length; I < LastLineLength; ++I)
    std::fputc(' ', Out);
  std::fflush(Out);
  // A dead stream (reader closed the pipe; SIGPIPE is ignored so the write
  // just fails) latches the error flag — stop painting for good rather
  // than paying a doomed write per merged cell.
  if (std::ferror(Out)) {
    Dead = true;
    std::clearerr(Out);
    return;
  }
  LastLineLength = Length;
}
