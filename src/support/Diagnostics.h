//===- support/Diagnostics.h - Front-end diagnostics ------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects lexer / parser / type-checker diagnostics with source locations.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_DIAGNOSTICS_H
#define QCM_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace qcm {

/// A 1-based line/column position in a source buffer.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string toString() const;
};

/// One diagnostic message.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;

  std::string toString() const;
};

/// An append-only bag of diagnostics shared by the front-end phases.
class DiagnosticEngine {
public:
  /// Records an error at \p Loc.
  void error(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string toString() const;

private:
  std::vector<Diagnostic> Diags;
};

} // namespace qcm

#endif // QCM_SUPPORT_DIAGNOSTICS_H
