//===- support/TestingHooks.h - Deterministic failure hooks -----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic crash canaries for the isolation tests (docs/ISOLATION.md).
/// With QCM_CRASH_AT=<index>[,<index>...] in the environment, the process
/// dies with SIGSEGV (or SIGABRT when QCM_CRASH_KIND=abort) the moment a
/// hooked code path reaches one of the listed grid-cell indices — the
/// index space is the checkpoint journal's global cell numbering, so a
/// canary crash and its quarantine record name the same cell.
///
/// Compiled in only for non-Release builds or -DQCM_TESTING_HOOKS=ON;
/// release binaries contain no trace of the hook and ignore the variables.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_TESTINGHOOKS_H
#define QCM_SUPPORT_TESTINGHOOKS_H

#include <cstdint>

#ifndef QCM_TESTING_HOOKS
#define QCM_TESTING_HOOKS 0
#endif

namespace qcm {

/// True when the hooks are compiled in AND QCM_CRASH_AT is set; tests use
/// this to skip canary scenarios against a hook-free binary.
bool testingHooksArmed();

/// Kills the process (raise(SIGSEGV) / abort()) when \p CellIndex is one of
/// the armed QCM_CRASH_AT indices; otherwise (or in a hook-free build) a
/// no-op. The environment is parsed once, on first call.
#if QCM_TESTING_HOOKS
void maybeCrashAtCell(uint64_t CellIndex);
#else
inline void maybeCrashAtCell(uint64_t) {}
#endif

} // namespace qcm

#endif // QCM_SUPPORT_TESTINGHOOKS_H
