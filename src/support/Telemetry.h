//===- support/Telemetry.h - Low-overhead telemetry plumbing ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic telemetry plumbing shared by the memory-event tracer
/// (memory/MemTrace.h), the optimizer pass metrics (opt/Pass.h), and the
/// command-line tools: the QCM_TRACE_ENABLED compile-time switch, a
/// single-line JSON object builder for JSONL emission, and a wall-clock
/// stopwatch.
///
/// Layering: this header must stay dependency-free within the project (only
/// support/) so every layer above can use it.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_TELEMETRY_H
#define QCM_SUPPORT_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

/// Compile-time master switch for the tracing/statistics instrumentation.
/// Building with -DQCM_TRACE_ENABLED=0 compiles every emission point down to
/// nothing (no counter increments, no sink checks) for overhead-critical
/// deployments; the APIs stay available so callers need no conditional code,
/// they just observe empty traces and zero counters.
#ifndef QCM_TRACE_ENABLED
#define QCM_TRACE_ENABLED 1
#endif

namespace qcm {

/// Escapes \p Text for inclusion inside a double-quoted JSON string
/// (quotes, backslashes, and control characters).
std::string jsonEscape(const std::string &Text);

/// Builds one single-line JSON object field by field. Insertion order is
/// preserved; values are either unsigned integers, strings, or booleans —
/// all the trace format needs.
class JsonObject {
public:
  JsonObject &field(const std::string &Key, uint64_t V);
  JsonObject &field(const std::string &Key, const std::string &V);
  JsonObject &field(const std::string &Key, const char *V);
  JsonObject &fieldBool(const std::string &Key, bool V);
  /// Splices \p RawJson in verbatim: a nested object/array already rendered
  /// by the caller (e.g. a ModelStats::toJson() or a JSON array).
  JsonObject &fieldRaw(const std::string &Key, const std::string &RawJson);

  /// The finished object, e.g. {"kind":"alloc","block":3}.
  std::string str() const { return "{" + Body + "}"; }

private:
  void key(const std::string &K);
  std::string Body;
};

/// Renders \p Rows (each already-valid JSON) as a multi-line JSON array:
/// one row per line, two-space indented — the shape both the benchmark
/// reports and the profiler's trace-event list want.
std::string jsonArray(const std::vector<std::string> &Rows);

/// Writes \p Content to \p Path atomically enough for our purposes (single
/// fopen/fwrite/fclose); false with \p Error (including the path) when any
/// step fails.
bool writeTextFile(const std::string &Path, const std::string &Content,
                   std::string &Error);

/// Wall-clock stopwatch for coarse metrics (pass timings). Monotonic.
class Stopwatch {
public:
  Stopwatch() : Start(std::chrono::steady_clock::now()) {}

  void reset() { Start = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

private:
  std::chrono::steady_clock::time_point Start;
};

} // namespace qcm

#endif // QCM_SUPPORT_TELEMETRY_H
