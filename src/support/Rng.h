//===- support/Rng.h - Deterministic random number generator ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64). All nondeterminism in the
/// model — concrete address placement in particular — is driven by explicit
/// seeded generators so that every behavior a checker observes is
/// reproducible from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_RNG_H
#define QCM_SUPPORT_RNG_H

#include <cstdint>

namespace qcm {

/// Deterministic SplitMix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound). Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t State;
};

} // namespace qcm

#endif // QCM_SUPPORT_RNG_H
