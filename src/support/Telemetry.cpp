//===- support/Telemetry.cpp ----------------------------------------------===//

#include "support/Telemetry.h"

#include <cstdio>

using namespace qcm;

std::string qcm::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char *Hex = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xf];
        Out += Hex[C & 0xf];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonObject::key(const std::string &K) {
  if (!Body.empty())
    Body += ",";
  Body += "\"" + jsonEscape(K) + "\":";
}

JsonObject &JsonObject::field(const std::string &Key, uint64_t V) {
  key(Key);
  Body += std::to_string(V);
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, const std::string &V) {
  key(Key);
  Body += "\"" + jsonEscape(V) + "\"";
  return *this;
}

JsonObject &JsonObject::field(const std::string &Key, const char *V) {
  return field(Key, std::string(V));
}

JsonObject &JsonObject::fieldBool(const std::string &Key, bool V) {
  key(Key);
  Body += V ? "true" : "false";
  return *this;
}

JsonObject &JsonObject::fieldRaw(const std::string &Key,
                                 const std::string &RawJson) {
  key(Key);
  Body += RawJson;
  return *this;
}

std::string qcm::jsonArray(const std::vector<std::string> &Rows) {
  std::string Out = "[";
  for (size_t I = 0; I < Rows.size(); ++I) {
    Out += I ? ",\n  " : "\n  ";
    Out += Rows[I];
  }
  Out += Rows.empty() ? "]" : "\n]";
  return Out;
}

bool qcm::writeTextFile(const std::string &Path, const std::string &Content,
                        std::string &Error) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Content.data(), 1, Content.size(), Out) ==
            Content.size();
  Ok = (std::fclose(Out) == 0) && Ok;
  if (!Ok)
    Error = "error writing '" + Path + "'";
  return Ok;
}
