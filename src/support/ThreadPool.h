//===- support/ThreadPool.h - Worker threads and cancellation ---*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool plus a cooperative cancellation token.
/// This is the execution substrate of the exploration engine
/// (refinement/Exploration.h): the engine owns the policy (work-item order,
/// deterministic merge, fail-fast), the pool owns the mechanics (threads, a
/// task queue, joining).
///
/// The pool is deliberately minimal: submit() enqueues a task, wait()
/// blocks until the queue drains and every worker is idle, and the
/// destructor waits then joins. Tasks must not submit to the pool they run
/// on while wait() may be in progress, and must catch their own exceptions
/// (a throwing task terminates the process, as with std::thread).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_THREADPOOL_H
#define QCM_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qcm {

/// Cooperative cancellation flag shared between a coordinator and its
/// workers. Workers poll cancelled() between (not within) work items, so
/// cancellation latency is bounded by one item's runtime.
class CancellationToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Fixed-size worker pool over a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means defaultConcurrency(). Workers
  /// register themselves with the span profiler as "<NamePrefix>-<index>"
  /// so profile exports attribute their spans to a named track.
  explicit ThreadPool(unsigned Threads, const char *NamePrefix = "worker");
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until the queue is empty and no task is running.
  void wait();

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to return 0 when unknowable).
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable; ///< signalled on submit/shutdown
  std::condition_variable Idle;          ///< signalled when work completes
  size_t Running = 0;                    ///< tasks currently executing
  bool ShuttingDown = false;
};

} // namespace qcm

#endif // QCM_SUPPORT_THREADPOOL_H
