//===- support/Fault.h - Faulting outcomes of semantic steps ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the two ways a memory or language operation can fail in the
/// paper's semantics, and an Outcome<T> carrier used pervasively:
///
/// * \c Undefined — undefined behavior in the C11 sense; the paper treats it
///   as the set of all behaviors (Section 2.3).
/// * \c OutOfMemory — failure to find concrete address space, either at
///   allocation time (concrete model) or at pointer-to-integer cast time
///   (quasi-concrete model, Section 3.4). The paper follows CompCertTSO and
///   treats it as *no behavior*, observing only the partial event prefix.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_FAULT_H
#define QCM_SUPPORT_FAULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace qcm {

/// A failed semantic step.
struct Fault {
  /// The two fault classes of the paper's semantics.
  enum class Kind {
    /// Undefined behavior: erroneous program; "set of all behaviors".
    Undefined,
    /// Out of concrete address space: "no behavior" (Section 2.3, item 4).
    OutOfMemory,
  };

  Kind FaultKind;
  /// Human-readable explanation, phrased per the standard diagnostic style
  /// (lowercase first word, no trailing period).
  std::string Reason;

  static Fault undefined(std::string Reason) {
    return Fault{Kind::Undefined, std::move(Reason)};
  }
  static Fault outOfMemory(std::string Reason) {
    return Fault{Kind::OutOfMemory, std::move(Reason)};
  }

  bool isUndefined() const { return FaultKind == Kind::Undefined; }
  bool isOutOfMemory() const { return FaultKind == Kind::OutOfMemory; }
};

/// Placeholder payload for operations that succeed without producing a value
/// (e.g. store, free).
struct Unit {};

/// Either a successful value of type T or a Fault. A minimal Expected-style
/// carrier; the model never throws.
template <typename T> class Outcome {
public:
  /*implicit*/ Outcome(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Outcome(Fault F) : FaultValue(std::move(F)) {}

  static Outcome success(T Value) { return Outcome(std::move(Value)); }
  static Outcome undefined(std::string Reason) {
    return Outcome(Fault::undefined(std::move(Reason)));
  }
  static Outcome outOfMemory(std::string Reason) {
    return Outcome(Fault::outOfMemory(std::move(Reason)));
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  const T &value() const {
    assert(ok() && "accessing value of a faulted outcome");
    return *Value;
  }
  T &value() {
    assert(ok() && "accessing value of a faulted outcome");
    return *Value;
  }

  const Fault &fault() const {
    assert(!ok() && "accessing fault of a successful outcome");
    return *FaultValue;
  }

  /// Propagation helper: rebuilds the fault under a different payload type.
  template <typename U> Outcome<U> propagate() const {
    assert(!ok() && "propagating a successful outcome");
    return Outcome<U>(*FaultValue);
  }

private:
  std::optional<T> Value;
  std::optional<Fault> FaultValue;
};

} // namespace qcm

#endif // QCM_SUPPORT_FAULT_H
