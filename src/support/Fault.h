//===- support/Fault.h - Faulting outcomes of semantic steps ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the two ways a memory or language operation can fail in the
/// paper's semantics, and an Outcome<T> carrier used pervasively:
///
/// * \c Undefined — undefined behavior in the C11 sense; the paper treats it
///   as the set of all behaviors (Section 2.3).
/// * \c OutOfMemory — failure to find concrete address space, either at
///   allocation time (concrete model) or at pointer-to-integer cast time
///   (quasi-concrete model, Section 3.4). The paper follows CompCertTSO and
///   treats it as *no behavior*, observing only the partial event prefix.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_FAULT_H
#define QCM_SUPPORT_FAULT_H

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace qcm {

/// A failed semantic step.
struct Fault {
  /// The two fault classes of the paper's semantics.
  enum class Kind {
    /// Undefined behavior: erroneous program; "set of all behaviors".
    Undefined,
    /// Out of concrete address space: "no behavior" (Section 2.3, item 4).
    OutOfMemory,
  };

  Kind FaultKind;
  /// Human-readable explanation, phrased per the standard diagnostic style
  /// (lowercase first word, no trailing period).
  std::string Reason;
  /// True when the fault was forced by deterministic fault injection
  /// (memory/FaultInjection.h) rather than arising organically from the
  /// model's semantics. Carried structurally so traces can tag injected
  /// events without string-matching the reason.
  bool Injected = false;

  static Fault undefined(std::string Reason) {
    return Fault{Kind::Undefined, std::move(Reason)};
  }
  static Fault outOfMemory(std::string Reason) {
    return Fault{Kind::OutOfMemory, std::move(Reason)};
  }
  static Fault injectedOutOfMemory(std::string Reason) {
    return Fault{Kind::OutOfMemory, std::move(Reason), /*Injected=*/true};
  }

  bool isUndefined() const { return FaultKind == Kind::Undefined; }
  bool isOutOfMemory() const { return FaultKind == Kind::OutOfMemory; }
};

/// Placeholder payload for operations that succeed without producing a value
/// (e.g. store, free).
struct Unit {};

/// Either a successful value of type T or a Fault. A minimal Expected-style
/// carrier; the model never throws.
///
/// Layout: a tagged union of the value and an owning *pointer* to the
/// fault, not a pair of optionals holding both inline. Memory operations
/// return an Outcome per load/store, so the carrier's footprint and its
/// success-path construction are on the model's hottest path: with the
/// fault boxed, Outcome<Value> is two words, and the success path never
/// touches fault storage (no std::string is constructed, destroyed, or
/// even branch-tested beyond the tag). Faults are terminal for the
/// execution that produces them, so the one heap allocation on the fault
/// path is never hot.
template <typename T> class Outcome {
public:
  /*implicit*/ Outcome(T Value)
      : Storage(std::in_place_index<0>, std::move(Value)) {}
  /*implicit*/ Outcome(Fault F)
      : Storage(std::in_place_index<1>,
                std::make_unique<Fault>(std::move(F))) {}

  Outcome(Outcome &&) = default;
  Outcome &operator=(Outcome &&) = default;
  Outcome(const Outcome &Other)
      : Storage(Other.ok()
                    ? StorageT(std::in_place_index<0>, Other.value())
                    : StorageT(std::in_place_index<1>,
                               std::make_unique<Fault>(Other.fault()))) {}
  Outcome &operator=(const Outcome &Other) {
    if (this != &Other)
      *this = Outcome(Other);
    return *this;
  }

  static Outcome success(T Value) { return Outcome(std::move(Value)); }
  static Outcome undefined(std::string Reason) {
    return Outcome(Fault::undefined(std::move(Reason)));
  }
  static Outcome outOfMemory(std::string Reason) {
    return Outcome(Fault::outOfMemory(std::move(Reason)));
  }

  bool ok() const { return Storage.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T &value() const {
    assert(ok() && "accessing value of a faulted outcome");
    return *std::get_if<0>(&Storage);
  }
  T &value() {
    assert(ok() && "accessing value of a faulted outcome");
    return *std::get_if<0>(&Storage);
  }

  const Fault &fault() const {
    assert(!ok() && "accessing fault of a successful outcome");
    return **std::get_if<1>(&Storage);
  }

  /// Propagation helper: rebuilds the fault under a different payload type.
  template <typename U> Outcome<U> propagate() const {
    assert(!ok() && "propagating a successful outcome");
    return Outcome<U>(fault());
  }

private:
  using StorageT = std::variant<T, std::unique_ptr<Fault>>;
  StorageT Storage;
};

} // namespace qcm

#endif // QCM_SUPPORT_FAULT_H
