//===- support/Ints.h - 32-bit machine word arithmetic ----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the 32-bit machine word type used throughout the model, together
/// with the wrap-around arithmetic the paper assumes for a 32-bit
/// architecture (values in int32, arithmetic modulo 2^32).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_INTS_H
#define QCM_SUPPORT_INTS_H

#include <cstdint>
#include <string>

namespace qcm {

/// A 32-bit machine word. The paper's values are elements of int32 with
/// two's-complement wrap-around; we represent them as unsigned 32-bit
/// integers, for which C++ guarantees modular arithmetic.
using Word = uint32_t;

/// Identifier of a logical block. Block 0 is reserved for the NULL block
/// (paper Section 4).
using BlockId = uint32_t;

/// Wrap-around addition modulo 2^32.
inline Word wrapAdd(Word A, Word B) { return A + B; }

/// Wrap-around subtraction modulo 2^32.
inline Word wrapSub(Word A, Word B) { return A - B; }

/// Wrap-around multiplication modulo 2^32.
inline Word wrapMul(Word A, Word B) { return A * B; }

/// Interprets a word as a signed 32-bit integer (two's complement).
inline int32_t asSigned(Word A) { return static_cast<int32_t>(A); }

/// Renders a word in decimal, as a signed value when the sign bit is set
/// would be confusing; the model only ever observes words, so we print the
/// unsigned reading.
std::string wordToString(Word A);

} // namespace qcm

#endif // QCM_SUPPORT_INTS_H
