//===- support/Profiler.h - Span profiler with Chrome-trace export -*- C++ -*-=//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pipeline-wide span profiler: RAII Spans (name, category, args) recorded
/// into per-thread buffers, exported as Chrome trace-event JSON loadable in
/// Perfetto / chrome://tracing, plus per-category wall-time histograms and
/// process-wide named counters. This is the *time* axis of the observability
/// story — memory/MemTrace.h answers "which memory operations happened",
/// this layer answers "where did the wall clock go": parse vs. typecheck vs.
/// QIR compilation vs. each grid cell of a refinement exploration vs. each
/// optimizer pass vs. journal I/O.
///
/// Recording contract:
///
/// * **Off by default.** Nothing is recorded until prof::setEnabled(true);
///   a Span constructed while disabled is one relaxed atomic load.
/// * **Per-thread buffers, no locking on the hot path.** Each thread
///   appends to its own chunked buffer; a chunk slot is published with one
///   release store of the per-thread count, so the exporting thread (which
///   reads with an acquire load) sees fully written records and TSan sees a
///   clean happens-before edge. The only mutex is taken when a thread
///   registers its buffer or grows it by a chunk (every 256 spans).
/// * **Thread attribution.** Buffers carry a stable small tid (registration
///   order) and a name (prof::setThreadName; ThreadPool workers name
///   themselves "worker-N"), exported as Chrome thread_name metadata so a
///   refinement grid's cells land on their worker's track.
/// * **Compiled out.** Building with -DQCM_PROFILE_ENABLED=0 turns Span and
///   every recording call into an empty inline stub — zero instructions on
///   every instrumented path, verified by the CI perf-smoke gate. The
///   export entry points stay callable and produce an empty trace, so tools
///   need no conditional code.
///
/// Layering: support/ only (Telemetry.h for JSON); everything above may use
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_PROFILER_H
#define QCM_SUPPORT_PROFILER_H

#include "support/Telemetry.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// Compile-time master switch for the span profiler, mirroring
/// QCM_TRACE_ENABLED (memory tracing) and QCM_FAULT_INJECTION_ENABLED.
#ifndef QCM_PROFILE_ENABLED
#define QCM_PROFILE_ENABLED 1
#endif

namespace qcm {
namespace prof {

/// Aggregated wall-time statistics for one span category, computed at
/// export time from the recorded spans.
struct CategorySummary {
  std::string Category;
  uint64_t Spans = 0;
  uint64_t TotalNs = 0;
  uint64_t MinNs = 0;
  uint64_t MaxNs = 0;
  /// Log2 duration histogram: bucket K counts spans with duration in
  /// [2^K, 2^(K+1)) microseconds; bucket 0 additionally holds sub-1us
  /// spans; the last bucket holds everything >= 2^(Buckets-1) us.
  static constexpr unsigned BucketCount = 22;
  uint64_t Buckets[BucketCount] = {};

  /// {"category":...,"spans":N,"total_us":...,"min_us":...,"max_us":...,
  ///  "hist_log2_us":[...]}
  std::string toJson() const;
};

/// Peak resident set size of this process in bytes (VmHWM on Linux,
/// ru_maxrss fallback); 0 when unknowable. Always available, independent of
/// QCM_PROFILE_ENABLED — it reads process state, not recorded spans.
uint64_t peakRssBytes();

#if QCM_PROFILE_ENABLED

/// Whether spans are currently recorded. One relaxed atomic load; the
/// profiler is process-global, like the trace compile switch.
bool enabled();

/// Turns recording on or off. Typically called once, by the tool that saw
/// --profile on its command line, before any instrumented work runs.
void setEnabled(bool On);

/// Names the calling thread for trace export ("main", "worker-3", ...).
/// The last name wins. A no-op while recording is disabled, so threads
/// spawned by a non-profiled run cost the registry nothing.
void setThreadName(const std::string &Name);

/// Adds \p Delta to the process-wide counter \p Name (created at first
/// use). Counters are exported with the category summaries and merged into
/// the metrics document; they are for low-frequency occurrences (cache
/// hits, journal records), not per-instruction counts.
void counterAdd(const std::string &Name, uint64_t Delta);

/// RAII span: records [construction, destruction) of the calling thread
/// under (Name, Category), with optional args attached any time before
/// destruction. Categories are static strings ("frontend", "compile",
/// "exec", "explore", "opt", "io", "check"); names may be dynamic.
class Span {
public:
  Span(const char *Name, const char *Category)
      : Span(std::string(Name), Category) {}
  Span(std::string Name, const char *Category);
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches one argument, shown in the trace viewer's details pane.
  void arg(const char *Key, const std::string &V);
  void arg(const char *Key, uint64_t V);
  void argBool(const char *Key, bool V);

private:
  bool Active;
  std::string Name;
  const char *Category;
  uint64_t StartNs = 0;
  JsonObject Args;
  bool HasArgs = false;
};

/// Number of spans recorded so far, over all threads.
uint64_t spanCount();

/// Per-category aggregates over everything recorded so far, sorted by
/// category name.
std::vector<CategorySummary> categorySummaries();

/// All process-wide counters, sorted by name.
std::vector<std::pair<std::string, uint64_t>> counters();

/// The full Chrome trace-event document: {"traceEvents":[...],...} with one
/// thread_name metadata event per thread and one complete ("ph":"X") event
/// per span, timestamps in microseconds since the profiler epoch. Loadable
/// in Perfetto and chrome://tracing. Call only when no instrumented work is
/// in flight (tools export after their pipeline finished; worker threads
/// have been joined by then).
std::string renderChromeTrace();

/// Writes renderChromeTrace() to \p Path; false with \p Error on failure.
bool writeChromeTrace(const std::string &Path, std::string &Error);

/// Drops every recorded span and counter and restarts the trace epoch.
/// Testing hook; call only while no other thread records.
void reset();

#else // !QCM_PROFILE_ENABLED

inline bool enabled() { return false; }
inline void setEnabled(bool) {}
inline void setThreadName(const std::string &) {}
inline void counterAdd(const std::string &, uint64_t) {}

class Span {
public:
  Span(const char *, const char *) {}
  Span(std::string, const char *) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  void arg(const char *, const std::string &) {}
  void arg(const char *, uint64_t) {}
  void argBool(const char *, bool) {}
};

inline uint64_t spanCount() { return 0; }
inline std::vector<CategorySummary> categorySummaries() { return {}; }
inline std::vector<std::pair<std::string, uint64_t>> counters() {
  return {};
}
std::string renderChromeTrace();
bool writeChromeTrace(const std::string &Path, std::string &Error);
inline void reset() {}

#endif // QCM_PROFILE_ENABLED

} // namespace prof
} // namespace qcm

#endif // QCM_SUPPORT_PROFILER_H
