//===- support/Subprocess.h - Worker-process lifecycle ----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// POSIX subprocess plumbing for the process-isolated exploration backend
/// (refinement/ProcessPool.h): fork/exec with pipe-connected stdin/stdout,
/// length-prefixed message framing over those pipes, non-blocking receive
/// for a poll() supervision loop, and exit/signal classification so a
/// supervisor can tell "exited 0" from "killed by SIGSEGV".
///
/// Framing: every message is a 4-byte little-endian payload length followed
/// by the payload bytes. Payloads are opaque to this layer (the isolation
/// protocol puts single-line JSON in them). A frame larger than
/// MaxFramePayload marks the stream corrupt — a supervisor treats that like
/// a worker death rather than attempting resynchronization.
///
/// Layering: support/ only; knows nothing about plans, cells, or models.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_SUBPROCESS_H
#define QCM_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <string>
#include <vector>

namespace qcm {

/// Upper bound on one frame's payload; a length prefix beyond this is
/// treated as protocol corruption, not an allocation request.
inline constexpr uint32_t MaxFramePayload = 64u << 20;

/// Blocking frame write to \p Fd (length prefix + payload), retrying on
/// EINTR and short writes. False on any write error (EPIPE included — the
/// caller must have SIGPIPE ignored; see installSignalHygiene()).
bool writeFrameFd(int Fd, const std::string &Payload);

/// Blocking frame read from \p Fd. True with the payload on success; false
/// otherwise, with \p Eof distinguishing a clean end-of-stream at a frame
/// boundary from a read error, a truncated frame, or an oversized length
/// prefix. This is the worker-side receive path; supervisors use the
/// non-blocking Subprocess::pumpReadable() instead.
bool readFrameFd(int Fd, std::string &Payload, bool &Eof);

/// One spawned worker process and its two pipes. Non-copyable, non-movable
/// (supervisors hold them behind unique_ptr). The destructor kills and
/// reaps a still-running child so a supervisor can never leak processes.
class Subprocess {
public:
  /// How a child left the process table.
  struct ExitStatus {
    /// False while the child is still running (awaitExit timed out).
    bool Known = false;
    /// True for a normal _exit; Code holds the exit code.
    bool Exited = false;
    int Code = 0;
    /// Terminating signal when !Exited (SIGSEGV, SIGABRT, SIGKILL, ...).
    int Sig = 0;

    /// "exited with code 127" / "killed by signal 11 (SIGSEGV)" /
    /// "still running".
    std::string describe() const;
  };

  Subprocess() = default;
  ~Subprocess();
  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Forks and execs \p Argv (argv[0] is the executable path) with stdin
  /// and stdout replaced by pipes to this object; stderr is inherited.
  /// Pipe fds are O_CLOEXEC so concurrently spawned siblings do not hold
  /// each other's pipe ends open. A failed exec makes the child _exit(127).
  bool start(const std::vector<std::string> &Argv, std::string &Error);

  bool running() const { return Pid > 0; }
  int pid() const { return Pid; }

  /// The read end of the child's stdout — the fd a supervisor poll()s.
  /// -1 once the stream hit EOF or the process was never started.
  int readFd() const { return OutFd; }

  /// Blocking frame write to the child's stdin.
  bool writeFrame(const std::string &Payload);

  /// Closes the child's stdin; a protocol-following worker sees EOF and
  /// exits cleanly. Idempotent.
  void closeStdin();

  /// Drains whatever the child's stdout has ready into the internal buffer
  /// (the fd is non-blocking). Returns false when the stream is finished —
  /// EOF, a read error, or an oversized frame (corrupted() tells which) —
  /// meaning the child is gone or must be treated as such. Already-buffered
  /// complete frames remain poppable either way.
  bool pumpReadable();

  /// Pops the next complete buffered frame. False when none is complete.
  bool popFrame(std::string &Payload);

  /// True once the stream carried an oversized length prefix.
  bool corrupted() const { return Corrupt; }

  /// Sends \p Sig to the child (no-op when not running).
  void terminate(int Sig);

  /// Reaps the child: waits up to \p GraceMs for it to exit, escalating to
  /// SIGKILL (then a blocking wait) when it has not. Returns the final
  /// status and forgets the pid; safe to call repeatedly (later calls
  /// return the recorded status).
  ExitStatus awaitExit(int GraceMs);

private:
  void closeFds();

  int Pid = -1;
  int InFd = -1;  // write end of the child's stdin
  int OutFd = -1; // read end of the child's stdout
  std::string RxBuf;
  bool Corrupt = false;
  ExitStatus Last;
};

} // namespace qcm

#endif // QCM_SUPPORT_SUBPROCESS_H
