//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace qcm;

std::string SourceLoc::toString() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string Diagnostic::toString() const {
  return Loc.toString() + ": error: " + Message;
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back(Diagnostic{Loc, std::move(Message)});
}

std::string DiagnosticEngine::toString() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.toString();
    Out += '\n';
  }
  return Out;
}
