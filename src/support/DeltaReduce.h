//===- support/DeltaReduce.h - Line-granular delta reduction ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy ddmin over lines of text. Originally grown inside the chaos
/// fuzzer; promoted here so the translation-validation pipeline can minimize
/// the failing input of a rejected pass application with the same reducer
/// the tests use.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SUPPORT_DELTAREDUCE_H
#define QCM_SUPPORT_DELTAREDUCE_H

#include <functional>
#include <string>
#include <vector>

namespace qcm {

/// Line-granular delta reduction (greedy ddmin): repeatedly removes chunks
/// of lines, keeping a removal whenever \p StillFails accepts the shrunken
/// source. The predicate owns all validity checking — it must return false
/// for sources that no longer compile or no longer exhibit the failure.
/// Deterministic; at most \p MaxChecks predicate calls, so a slow predicate
/// cannot stall a caller.
inline std::string
minimizeLines(std::string Source,
              const std::function<bool(const std::string &)> &StillFails,
              unsigned MaxChecks = 2000) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t Eol = Source.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Source.size() - 1;
    Lines.push_back(Source.substr(Pos, Eol - Pos + 1));
    Pos = Eol + 1;
  }

  auto Join = [](const std::vector<std::string> &Ls) {
    std::string S;
    for (const std::string &L : Ls)
      S += L;
    return S;
  };

  unsigned Checks = 0;
  for (size_t Chunk = Lines.size() / 2; Chunk >= 1; Chunk /= 2) {
    bool Removed = true;
    while (Removed && Checks < MaxChecks) {
      Removed = false;
      for (size_t Start = 0;
           Start + Chunk <= Lines.size() && Checks < MaxChecks;) {
        std::vector<std::string> Candidate;
        Candidate.reserve(Lines.size() - Chunk);
        Candidate.insert(Candidate.end(), Lines.begin(), Lines.begin() + Start);
        Candidate.insert(Candidate.end(), Lines.begin() + Start + Chunk,
                         Lines.end());
        ++Checks;
        if (StillFails(Join(Candidate))) {
          Lines = std::move(Candidate);
          Removed = true;
          // Do not advance: the lines that slid into [Start, Start+Chunk)
          // get their shot immediately.
        } else {
          ++Start;
        }
      }
    }
    if (Chunk == 1)
      break;
  }
  return Join(Lines);
}

} // namespace qcm

#endif // QCM_SUPPORT_DELTAREDUCE_H
