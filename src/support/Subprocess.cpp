//===- support/Subprocess.cpp ---------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace qcm;

namespace {

bool writeAll(int Fd, const char *Data, size_t Size) {
  while (Size > 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Size bytes. Returns 1 on success, 0 on EOF before the
/// first byte, -1 on error or EOF mid-record.
int readAll(int Fd, char *Data, size_t Size) {
  size_t Got = 0;
  while (Got < Size) {
    ssize_t N = ::read(Fd, Data + Got, Size - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0)
      return Got == 0 ? 0 : -1;
    Got += static_cast<size_t>(N);
  }
  return 1;
}

void encodeLength(uint32_t Length, unsigned char Hdr[4]) {
  Hdr[0] = static_cast<unsigned char>(Length);
  Hdr[1] = static_cast<unsigned char>(Length >> 8);
  Hdr[2] = static_cast<unsigned char>(Length >> 16);
  Hdr[3] = static_cast<unsigned char>(Length >> 24);
}

uint32_t decodeLength(const unsigned char Hdr[4]) {
  return static_cast<uint32_t>(Hdr[0]) | (static_cast<uint32_t>(Hdr[1]) << 8) |
         (static_cast<uint32_t>(Hdr[2]) << 16) |
         (static_cast<uint32_t>(Hdr[3]) << 24);
}

} // namespace

bool qcm::writeFrameFd(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFramePayload)
    return false;
  unsigned char Hdr[4];
  encodeLength(static_cast<uint32_t>(Payload.size()), Hdr);
  return writeAll(Fd, reinterpret_cast<const char *>(Hdr), sizeof(Hdr)) &&
         writeAll(Fd, Payload.data(), Payload.size());
}

bool qcm::readFrameFd(int Fd, std::string &Payload, bool &Eof) {
  Eof = false;
  unsigned char Hdr[4];
  int R = readAll(Fd, reinterpret_cast<char *>(Hdr), sizeof(Hdr));
  if (R == 0) {
    Eof = true;
    return false;
  }
  if (R < 0)
    return false;
  uint32_t Length = decodeLength(Hdr);
  if (Length > MaxFramePayload)
    return false;
  Payload.resize(Length);
  return Length == 0 ||
         readAll(Fd, Payload.data(), Length) == 1;
}

std::string Subprocess::ExitStatus::describe() const {
  if (!Known)
    return "still running";
  if (Exited)
    return "exited with code " + std::to_string(Code);
  std::string Text = "killed by signal " + std::to_string(Sig);
  if (const char *Name = strsignal(Sig))
    Text += std::string(" (") + Name + ")";
  return Text;
}

Subprocess::~Subprocess() {
  if (Pid > 0) {
    terminate(SIGKILL);
    awaitExit(/*GraceMs=*/0);
  }
  closeFds();
}

void Subprocess::closeFds() {
  if (InFd >= 0)
    ::close(InFd);
  if (OutFd >= 0)
    ::close(OutFd);
  InFd = OutFd = -1;
}

bool Subprocess::start(const std::vector<std::string> &Argv,
                       std::string &Error) {
  if (Pid > 0) {
    Error = "subprocess already running";
    return false;
  }
  if (Argv.empty()) {
    Error = "empty argv";
    return false;
  }
  int ToChild[2], FromChild[2];
  if (::pipe(ToChild) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (::pipe(FromChild) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    return false;
  }
  // The parent-held ends must not leak into concurrently spawned siblings:
  // a sibling holding our child's stdin write-end open would keep the child
  // from ever seeing EOF on shutdown.
  ::fcntl(ToChild[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(FromChild[0], F_SETFD, FD_CLOEXEC);

  pid_t Child = ::fork();
  if (Child < 0) {
    Error = std::string("fork: ") + std::strerror(errno);
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    ::close(FromChild[1]);
    return false;
  }
  if (Child == 0) {
    // Child: wire the pipes to stdin/stdout and exec. Only async-signal-
    // safe calls between fork and exec.
    ::dup2(ToChild[0], STDIN_FILENO);
    ::dup2(FromChild[1], STDOUT_FILENO);
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    ::close(FromChild[1]);
    std::vector<char *> Args;
    Args.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      Args.push_back(const_cast<char *>(A.c_str()));
    Args.push_back(nullptr);
    ::execv(Args[0], Args.data());
    _exit(127); // exec failed; 127 is the conventional "cannot exec"
  }

  ::close(ToChild[0]);
  ::close(FromChild[1]);
  Pid = Child;
  InFd = ToChild[1];
  OutFd = FromChild[0];
  // Non-blocking receive: the supervisor drains after poll() says readable
  // and must never block on a half-written frame.
  int Flags = ::fcntl(OutFd, F_GETFL, 0);
  ::fcntl(OutFd, F_SETFL, Flags | O_NONBLOCK);
  RxBuf.clear();
  Corrupt = false;
  Last = ExitStatus{};
  return true;
}

bool Subprocess::writeFrame(const std::string &Payload) {
  return InFd >= 0 && writeFrameFd(InFd, Payload);
}

void Subprocess::closeStdin() {
  if (InFd >= 0)
    ::close(InFd);
  InFd = -1;
}

bool Subprocess::pumpReadable() {
  if (OutFd < 0 || Corrupt)
    return false;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::read(OutFd, Chunk, sizeof(Chunk));
    if (N > 0) {
      RxBuf.append(Chunk, static_cast<size_t>(N));
      // An oversized length prefix can be diagnosed as soon as the header
      // is buffered; keep reading would just chase garbage.
      if (RxBuf.size() >= 4 &&
          decodeLength(reinterpret_cast<const unsigned char *>(
              RxBuf.data())) > MaxFramePayload) {
        Corrupt = true;
        return false;
      }
      continue;
    }
    if (N == 0)
      return false; // EOF: the child closed stdout (usually: died)
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return true;
    return false;
  }
}

bool Subprocess::popFrame(std::string &Payload) {
  if (RxBuf.size() < 4)
    return false;
  uint32_t Length = decodeLength(
      reinterpret_cast<const unsigned char *>(RxBuf.data()));
  if (Length > MaxFramePayload) {
    Corrupt = true;
    return false;
  }
  if (RxBuf.size() < 4 + static_cast<size_t>(Length))
    return false;
  Payload.assign(RxBuf, 4, Length);
  RxBuf.erase(0, 4 + static_cast<size_t>(Length));
  return true;
}

void Subprocess::terminate(int Sig) {
  if (Pid > 0)
    ::kill(Pid, Sig);
}

Subprocess::ExitStatus Subprocess::awaitExit(int GraceMs) {
  if (Pid <= 0)
    return Last;
  int Status = 0;
  // Poll for the exit within the grace window; a frame-protocol worker that
  // saw EOF exits immediately, so the common case is one iteration.
  for (int Waited = 0;; Waited += 10) {
    pid_t R = ::waitpid(Pid, &Status, WNOHANG);
    if (R == Pid)
      break;
    if (R < 0 && errno != EINTR) {
      // Already reaped elsewhere; treat as a plain exit.
      Status = 0;
      break;
    }
    if (Waited >= GraceMs) {
      ::kill(Pid, SIGKILL);
      while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
        ;
      break;
    }
    ::usleep(10 * 1000);
  }
  Last.Known = true;
  if (WIFEXITED(Status)) {
    Last.Exited = true;
    Last.Code = WEXITSTATUS(Status);
  } else if (WIFSIGNALED(Status)) {
    Last.Exited = false;
    Last.Sig = WTERMSIG(Status);
  }
  Pid = -1;
  closeFds();
  return Last;
}
