//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Profiler.h"

using namespace qcm;

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1u;
}

ThreadPool::ThreadPool(unsigned Threads, const char *NamePrefix) {
  if (Threads == 0)
    Threads = defaultConcurrency();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, NamePrefix, I] {
      prof::setThreadName(std::string(NamePrefix) + "-" + std::to_string(I));
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(
          Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // shutting down
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Running;
    }
    Idle.notify_all();
  }
}
