//===- ir/Compile.h - AST -> QIR compiler -----------------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a Section 2 program (lang/Ast.h) to QIR (ir/Qir.h). Compilation
/// never fails: programs whose execution the AST walker would fault on
/// (undeclared globals, undeclared callees, wrong argument counts,
/// assignments from value-less operations) compile to Trap instructions at
/// the exact evaluation position, carrying the walker's fault message
/// verbatim — so the compiled program's behavior is identical, faults
/// included.
///
/// The compiled module aliases the source Program (Instr pointers feed the
/// OnInstr observer), so the Program must outlive the module.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_IR_COMPILE_H
#define QCM_IR_COMPILE_H

#include "ir/Qir.h"

#include <memory>

namespace qcm {
namespace qir {

/// Compiles \p Prog to a QIR module. \p Prog must outlive the result.
std::shared_ptr<const QirModule> compileProgram(const Program &Prog);

/// Process-wide count of compileProgram() invocations. Lets tests assert
/// the compile-once discipline: the refinement and simulation checkers must
/// lower each (program, instantiated context) pair exactly once however
/// many oracles and input tapes they explore.
uint64_t compilationsPerformed();

} // namespace qir
} // namespace qcm

#endif // QCM_IR_COMPILE_H
