//===- ir/Qir.h - Flat bytecode IR under the interpreter --------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// QIR — the compiled program form executed by the Machine. The Section 2
/// language is lowered once per (program, instantiated context) pair and
/// the resulting module is reused across every oracle and input tape of a
/// refinement or simulation exploration; this is the "compile once, execute
/// many" discipline (compare CompCert's Clight lowering, which likewise
/// interposes a flat representation between surface syntax and the memory
/// model).
///
/// Shape of the IR:
///
///  * one flat instruction vector per function; nested If/While trees are
///    compiled into basic blocks joined by Jump/JumpIfZero with absolute
///    instruction-index targets;
///  * variables are resolved to dense frame-slot indices at compile time
///    (parameters first, then locals, then any assigned-but-undeclared
///    names as "hidden" slots that reproduce the AST walker's dynamic-entry
///    semantics);
///  * callees and globals are resolved to table indices; extern callees
///    keep their name (needed for handler lookup and ExternalCall signals);
///  * constants are pre-decoded into semantic Values in a per-module pool;
///  * statements the AST walker would have charged a fuel step for carry a
///    StmtStart marker, so step counts, the step-limit cutoff, and the
///    OnInstr observer match the historical tree-walking engine exactly.
///
/// Invariants (checked by validateModule, relied on by the executor):
///
///  * slot indices are frame-dense: every index in [0, NumSlots) and no
///    others appears, parameters occupying [0, NumParams);
///  * jump targets land on basic-block starts, and BlockStarts is the
///    sorted set of those starts — block structure is preserved so the
///    simulation checker's sync points (extern calls) remain addressable
///    statement boundaries;
///  * every function's code ends with Ret, and the eval stack is empty at
///    every statement boundary.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_IR_QIR_H
#define QCM_IR_QIR_H

#include "lang/Ast.h"
#include "memory/Value.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcm {
namespace qir {

/// QIR opcodes. "Expression" ops manipulate the per-machine eval stack;
/// "statement" ops consume it and perform effects. The eval stack is empty
/// at every statement boundary.
enum class Op : uint8_t {
  // Expression ops.
  PushConst,  ///< A: const-pool index. Push the pre-decoded Value.
  PushSlot,   ///< A: slot index. Push the slot's value (hidden slots fault
              ///< until their first write, matching the AST walker).
  PushGlobal, ///< A: global index. Push the global block's pointer value.
  Binary,     ///< Aux: BinaryOp. Pop R, pop L, push L op R (Section 4 rules).
  Trap,       ///< A: string-pool index. Fault undefined(StringPool[A]);
              ///< compile-time-resolved name errors trap here so behavior
              ///< matches the AST walker's runtime faults exactly.

  // Statement tails and whole statements.
  StoreSlot, ///< A: slot index. Pop a value into the slot.
  Drop,      ///< Pop and discard (effect-only pure statement).
  LoadMem,   ///< A: dest slot (NoSlot: none), B: name idx, Aux: DeclKind.
             ///< Pop address, load through the model, dynamic type check
             ///< (Section 6.1), write the slot.
  StoreMem,  ///< Pop value, pop address, store through the model.
  Malloc,    ///< A: dest slot or NoSlot. Pop size, allocate.
  FreeMem,   ///< Pop pointer, deallocate.
  Cast,      ///< A: dest slot or NoSlot, Aux: 0 = (int), 1 = (ptr).
  Input,     ///< A: dest slot or NoSlot. Read the tape, record the event.
  Output,    ///< Pop an integer, record the event.
  Call,      ///< A: function index, B: argc. Pop argc args, push a frame.
  CallExtern,///< A: name idx, B: argc. Pop argc args; run the registered
             ///< handler or surface an ExternalCall signal.
  Jump,      ///< A: absolute instruction index.
  JumpIfZero,///< A: target, B: fault-message idx. Pop an integer condition;
             ///< jump when zero. A pointer condition faults with
             ///< StringPool[B] ("branch"/"loop on a logical address").
  EnterSeq,  ///< No-op carrying the fuel step the AST walker charged for
             ///< entering a { ... } sequence.
  Ret,       ///< Pop the frame (the walker's end-of-work-list step).
};

const char *opName(Op O);

/// Sentinel for "no destination slot" (effect-only forms).
inline constexpr uint32_t NoSlot = 0xffffffffu;

/// Declared type of a LoadMem destination, driving the Section 6.1 dynamic
/// type check.
enum class DeclKind : uint8_t { Int = 0, Ptr = 1, Hidden = 2 };

/// One QIR instruction. Origin points into the source Program's AST (which
/// must outlive the module) and is what the OnInstr observer receives;
/// it is null for ops that the AST walker never reported (Seq entries,
/// frame pops, mid-statement ops).
struct QInstr {
  Op Opcode = Op::EnterSeq;
  /// Statement boundary: consumes one fuel step and, when Origin is
  /// non-null, fires the OnInstr observer — exactly where the AST walker
  /// popped a work item.
  bool StmtStart = false;
  uint8_t Aux = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  const Instr *Origin = nullptr;
};

/// Net eval-stack effect of one instruction (pushes minus pops); Trap and
/// Ret never fall through so their value is immaterial. Used by the
/// compiler to size MaxEvalDepth and by the validator to check it.
int stackDelta(const QInstr &I);

/// One compiled function.
struct QFunction {
  std::string Name;
  bool IsExtern = false;
  uint32_t NumParams = 0;
  /// Declared slots: parameters then locals, densely indexed from 0.
  uint32_t NumDeclaredSlots = 0;
  /// Declared plus hidden slots (assigned-but-undeclared names).
  uint32_t NumSlots = 0;
  /// Name of each slot, in index order (diagnostics, readLocal()).
  std::vector<std::string> SlotNames;
  /// Declared types of the first NumDeclaredSlots slots.
  std::vector<Type> SlotTypes;
  /// Slot receiving each parameter. Distinct parameters occupy distinct
  /// slots; a repeated name shares one slot and the first binding wins,
  /// matching the AST walker's Env.emplace.
  std::vector<uint32_t> ParamSlots;
  /// Flat code; empty for externs. Ends with Ret.
  std::vector<QInstr> Code;
  /// Sorted instruction indices opening each basic block (entry, jump
  /// targets, fall-throughs after jumps).
  std::vector<uint32_t> BlockStarts;
  /// Peak eval-stack depth any statement of this function reaches, computed
  /// at compile time. The executor reserves this much stack headroom when a
  /// frame is pushed, which is what lets both dispatch loops run pushes and
  /// pops against a flat buffer with no per-push capacity checks.
  uint32_t MaxEvalDepth = 0;
  /// Indices of the ptr-typed declared slots, precomputed so a frame push
  /// under a logical-NULL value domain patches exactly these instead of
  /// re-scanning SlotTypes per call.
  std::vector<uint32_t> PtrSlots;
};

/// A compiled program. References the source Program (AST) it was compiled
/// from; the Program must outlive the module.
struct QirModule {
  const Program *Source = nullptr;
  /// Same order as Source->Functions.
  std::vector<QFunction> Functions;
  /// Same order as Source->Globals.
  std::vector<std::string> GlobalNames;
  /// Pre-decoded literal values (PushConst operands).
  std::vector<Value> ConstPool;
  /// Fault messages, variable/function names (Trap, LoadMem, CallExtern).
  std::vector<std::string> StringPool;
  /// Function name -> index into Functions.
  std::map<std::string, uint32_t> FunctionIndex;

  const QFunction *findFunction(const std::string &Name) const {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
  }

  /// Human-readable disassembly of the whole module.
  std::string toString() const;
};

/// Structural well-formedness check (see the invariant list in the file
/// comment). Returns a description of the first violation, or an empty
/// string when the module is well-formed. Used by tests; the compiler
/// always produces valid modules.
std::string validateModule(const QirModule &M);

} // namespace qir
} // namespace qcm

#endif // QCM_IR_QIR_H
