//===- ir/Compile.cpp - AST -> QIR compiler -------------------------------===//
//
// Lowering rules (docs/IR.md walks through them with examples):
//
//  * Every point where the AST walker popped a work item — each non-Seq
//    statement, each Seq entry, each While re-test, and the frame pop —
//    becomes exactly one StmtStart-marked instruction, so fuel accounting
//    and the OnInstr observer are bit-identical to the tree walker.
//  * Name resolution happens here, once. Names the walker would fault on at
//    runtime (undeclared globals/callees, argument-count mismatches) lower
//    to Trap at the same evaluation position with the same message.
//  * Undeclared variables that the walker's Env would create dynamically
//    (assignment targets, load destinations) get "hidden" slots past
//    NumDeclaredSlots; reading one before its first write faults like the
//    walker's failed Env lookup.
//
//===----------------------------------------------------------------------===//

#include "ir/Compile.h"

#include "support/Profiler.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace qcm;
using namespace qcm::qir;

namespace {

std::atomic<uint64_t> CompileCount{0};

/// Module-wide interning state shared by all function compilations.
struct ModuleBuilder {
  QirModule &M;
  std::map<Word, uint32_t> ConstIndex;
  std::map<std::string, uint32_t> StringIndex;
  std::map<std::string, uint32_t> GlobalIndex;

  explicit ModuleBuilder(QirModule &M) : M(M) {}

  uint32_t constant(Word V) {
    auto [It, New] = ConstIndex.try_emplace(
        V, static_cast<uint32_t>(M.ConstPool.size()));
    if (New)
      M.ConstPool.push_back(Value::makeInt(V));
    return It->second;
  }

  uint32_t string(const std::string &S) {
    auto [It, New] = StringIndex.try_emplace(
        S, static_cast<uint32_t>(M.StringPool.size()));
    if (New)
      M.StringPool.push_back(S);
    return It->second;
  }
};

class FunctionCompiler {
public:
  FunctionCompiler(ModuleBuilder &B, const FunctionDecl &Decl, QFunction &F)
      : B(B), Decl(Decl), F(F) {
    // Declared slots: parameters then locals, densely indexed, first
    // declaration of a name wins (the walker's Env.emplace order).
    for (const VarDecl &P : Decl.Params)
      F.ParamSlots.push_back(declaredSlot(P));
    for (const VarDecl &L : Decl.Locals)
      declaredSlot(L);
    F.NumParams = static_cast<uint32_t>(Decl.Params.size());
    F.NumDeclaredSlots = static_cast<uint32_t>(F.SlotNames.size());
  }

  void compileBody() {
    compileStmt(*Decl.Body);
    uint32_t RetIdx = emit(Op::Ret);
    F.Code[RetIdx].StmtStart = true; // the walker's frame-pop step
    F.NumSlots = static_cast<uint32_t>(F.SlotNames.size());
    resolveLabels();
    computeMaxEvalDepth();
    for (uint32_t S = 0; S < F.NumDeclaredSlots; ++S)
      if (F.SlotTypes[S] == Type::Ptr)
        F.PtrSlots.push_back(S);
  }

private:
  ModuleBuilder &B;
  const FunctionDecl &Decl;
  QFunction &F;

  std::map<std::string, uint32_t> SlotIndex;
  std::vector<uint32_t> LabelPC;
  struct Fixup {
    uint32_t At;
    uint32_t Label;
  };
  std::vector<Fixup> Fixups;

  uint32_t declaredSlot(const VarDecl &D) {
    auto [It, New] = SlotIndex.try_emplace(
        D.Name, static_cast<uint32_t>(F.SlotNames.size()));
    if (New) {
      F.SlotNames.push_back(D.Name);
      F.SlotTypes.push_back(D.Ty);
    }
    return It->second;
  }

  /// Slot of \p Name; creates a hidden slot on first use of an undeclared
  /// name.
  uint32_t slotFor(const std::string &Name) {
    auto [It, New] = SlotIndex.try_emplace(
        Name, static_cast<uint32_t>(F.SlotNames.size()));
    if (New)
      F.SlotNames.push_back(Name);
    return It->second;
  }

  uint32_t emit(Op Opcode, uint32_t A = 0, uint32_t B = 0, uint8_t Aux = 0) {
    uint32_t Idx = static_cast<uint32_t>(F.Code.size());
    QInstr I;
    I.Opcode = Opcode;
    I.A = A;
    I.B = B;
    I.Aux = Aux;
    F.Code.push_back(I);
    return Idx;
  }

  uint32_t newLabel() {
    LabelPC.push_back(0xffffffffu);
    return static_cast<uint32_t>(LabelPC.size() - 1);
  }

  void place(uint32_t Label) {
    LabelPC[Label] = static_cast<uint32_t>(F.Code.size());
  }

  void emitJump(Op Opcode, uint32_t Label, uint32_t FaultMsg = 0) {
    Fixups.push_back({emit(Opcode, 0, FaultMsg), Label});
  }

  void resolveLabels() {
    F.BlockStarts.push_back(0);
    for (const Fixup &Fx : Fixups) {
      uint32_t Target = LabelPC[Fx.Label];
      assert(Target < F.Code.size() && "unresolved label");
      F.Code[Fx.At].A = Target;
      F.BlockStarts.push_back(Target);
      // The instruction after a jump opens the fall-through block.
      if (Fx.At + 1 < F.Code.size())
        F.BlockStarts.push_back(Fx.At + 1);
    }
    std::sort(F.BlockStarts.begin(), F.BlockStarts.end());
    F.BlockStarts.erase(
        std::unique(F.BlockStarts.begin(), F.BlockStarts.end()),
        F.BlockStarts.end());
  }

  /// Linear depth scan. The eval stack is empty at every statement
  /// boundary and every block start, and flow within a statement is
  /// straight-line, so resetting the running depth at those points makes
  /// the scan exact — validateModule cross-checks it with a full dataflow.
  void computeMaxEvalDepth() {
    int Depth = 0, Max = 0;
    for (uint32_t PC = 0; PC < F.Code.size(); ++PC) {
      if (F.Code[PC].StmtStart ||
          std::binary_search(F.BlockStarts.begin(), F.BlockStarts.end(), PC))
        Depth = 0;
      Depth += stackDelta(F.Code[PC]);
      Depth = std::max(Depth, 0); // Trap/Ret: no fall-through
      Max = std::max(Max, Depth);
    }
    F.MaxEvalDepth = static_cast<uint32_t>(Max);
  }

  void compileExp(const Exp &E) {
    switch (E.ExpKind) {
    case Exp::Kind::IntLit:
      emit(Op::PushConst, B.constant(E.IntValue));
      return;
    case Exp::Kind::Var:
      emit(Op::PushSlot, slotFor(E.Name));
      return;
    case Exp::Kind::Global: {
      auto It = B.GlobalIndex.find(E.Name);
      if (It == B.GlobalIndex.end())
        emit(Op::Trap,
             B.string("read of undeclared global '" + E.Name + "'"));
      else
        emit(Op::PushGlobal, It->second);
      return;
    }
    case Exp::Kind::Binary:
      compileExp(*E.Lhs);
      compileExp(*E.Rhs);
      emit(Op::Binary, 0, 0, static_cast<uint8_t>(E.Op));
      return;
    }
  }

  void compileAssign(const Instr &I) {
    const RExp &R = *I.Rhs;
    const bool HasDest = !I.Var.empty();
    const uint32_t Dest = HasDest ? slotFor(I.Var) : NoSlot;
    switch (R.RExpKind) {
    case RExp::Kind::Pure:
      compileExp(*R.Arg);
      if (HasDest)
        emit(Op::StoreSlot, Dest);
      else
        emit(Op::Drop);
      return;
    case RExp::Kind::Malloc:
      compileExp(*R.Arg);
      emit(Op::Malloc, Dest);
      return;
    case RExp::Kind::Free:
      compileExp(*R.Arg);
      emit(Op::FreeMem);
      break; // value-less: a destination traps below
    case RExp::Kind::Cast:
      compileExp(*R.Arg);
      emit(Op::Cast, Dest, 0, R.CastTo == Type::Int ? 0 : 1);
      return;
    case RExp::Kind::Input:
      emit(Op::Input, Dest);
      return;
    case RExp::Kind::Output:
      compileExp(*R.Arg);
      emit(Op::Output);
      break; // value-less: a destination traps below
    }
    if (HasDest)
      emit(Op::Trap,
           B.string("assignment from a value-less operation"));
  }

  void compileCall(const Instr &I) {
    for (const auto &A : I.Args)
      compileExp(*A);
    const uint32_t Argc = static_cast<uint32_t>(I.Args.size());
    auto It = B.M.FunctionIndex.find(I.Callee);
    if (It == B.M.FunctionIndex.end()) {
      emit(Op::Trap,
           B.string("call to undeclared function '" + I.Callee + "'"));
      return;
    }
    const QFunction &Callee = B.M.Functions[It->second];
    if (Callee.NumParams != Argc) {
      emit(Op::Trap,
           B.string("call with wrong argument count to '" + I.Callee + "'"));
      return;
    }
    if (Callee.IsExtern)
      emit(Op::CallExtern, B.string(I.Callee), Argc);
    else
      emit(Op::Call, It->second, Argc);
  }

  void compileLoad(const Instr &I) {
    compileExp(*I.Addr);
    const VarDecl *D = Decl.findVariable(I.Var);
    DeclKind Kind;
    std::string Msg;
    if (!D) {
      Kind = DeclKind::Hidden;
      Msg = "load into undeclared variable '" + I.Var + "'";
    } else if (D->Ty == Type::Int) {
      Kind = DeclKind::Int;
      Msg = "load of a logical address into int variable '" + I.Var + "'";
    } else {
      Kind = DeclKind::Ptr;
      Msg = "load of an integer into ptr variable '" + I.Var + "'";
    }
    emit(Op::LoadMem, slotFor(I.Var), B.string(Msg),
         static_cast<uint8_t>(Kind));
  }

  void compileStmt(const Instr &I) {
    const uint32_t Begin = static_cast<uint32_t>(F.Code.size());
    switch (I.InstrKind) {
    case Instr::Kind::Seq:
      emit(Op::EnterSeq);
      F.Code[Begin].StmtStart = true; // Origin stays null: the walker never
                                      // reported Seq entries to OnInstr
      for (const auto &S : I.Stmts)
        compileStmt(*S);
      return;

    case Instr::Kind::If: {
      compileExp(*I.Cond);
      uint32_t LElse = newLabel();
      uint32_t LEnd = newLabel();
      emitJump(Op::JumpIfZero, I.Else ? LElse : LEnd,
               B.string("branch on a logical address"));
      compileStmt(*I.Then);
      if (I.Else) {
        emitJump(Op::Jump, LEnd);
        place(LElse);
        compileStmt(*I.Else);
      }
      place(LEnd);
      break;
    }

    case Instr::Kind::While: {
      uint32_t LEnd = newLabel();
      uint32_t LTest = newLabel();
      place(LTest); // == Begin: each re-test is one StmtStart step
      compileExp(*I.Cond);
      emitJump(Op::JumpIfZero, LEnd,
               B.string("loop on a logical address"));
      compileStmt(*I.Body);
      emitJump(Op::Jump, LTest); // back edge: free, like the walker's
                                 // work-list re-push
      place(LEnd);
      break;
    }

    case Instr::Kind::Call:
      compileCall(I);
      break;
    case Instr::Kind::Assign:
      compileAssign(I);
      break;
    case Instr::Kind::Load:
      compileLoad(I);
      break;
    case Instr::Kind::Store:
      compileExp(*I.Addr);
      compileExp(*I.StoreVal);
      emit(Op::StoreMem);
      break;
    }
    F.Code[Begin].StmtStart = true;
    F.Code[Begin].Origin = &I;
  }
};

} // namespace

std::shared_ptr<const QirModule> qcm::qir::compileProgram(const Program &Prog) {
  CompileCount.fetch_add(1, std::memory_order_relaxed);
  prof::Span Span("compile-qir", "compile");
  Span.arg("functions", static_cast<uint64_t>(Prog.Functions.size()));
  auto M = std::make_shared<QirModule>();
  M->Source = &Prog;

  ModuleBuilder B(*M);
  for (const GlobalDecl &G : Prog.Globals) {
    // First declaration wins on duplicate names, like the walker's
    // Globals.emplace; every declaration still gets allocated at setup.
    B.GlobalIndex.try_emplace(
        G.Name, static_cast<uint32_t>(M->GlobalNames.size()));
    M->GlobalNames.push_back(G.Name);
  }

  // Declare every function up front so calls resolve regardless of order.
  for (const FunctionDecl &Fn : Prog.Functions) {
    QFunction F;
    F.Name = Fn.Name;
    F.IsExtern = Fn.isExtern();
    F.NumParams = static_cast<uint32_t>(Fn.Params.size());
    M->FunctionIndex.try_emplace(
        Fn.Name, static_cast<uint32_t>(M->Functions.size()));
    M->Functions.push_back(std::move(F));
  }
  for (size_t Idx = 0; Idx < Prog.Functions.size(); ++Idx) {
    const FunctionDecl &Fn = Prog.Functions[Idx];
    if (Fn.isExtern())
      continue;
    FunctionCompiler FC(B, Fn, M->Functions[Idx]);
    FC.compileBody();
  }
  return M;
}

uint64_t qcm::qir::compilationsPerformed() {
  return CompileCount.load(std::memory_order_relaxed);
}
