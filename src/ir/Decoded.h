//===- ir/Decoded.h - Direct-threaded decoded blocks ------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded representation behind the Machine's direct-threaded dispatch
/// mode. QIR stays the portable, validated program form; this layer is a
/// per-machine execution cache over it, in the style of a baseline
/// translator: straight-line runs of bytecode are decoded block-at-a-time
/// into arrays of pre-resolved operands plus computed-goto label addresses,
/// keyed on their entry PC, and executed without touching the QInstr stream
/// again until control leaves the block.
///
/// What translation does, beyond copying operands:
///
///  * **Statement gates.** Every StmtStart instruction is preceded by one
///    synthetic Gate op carrying the fuel check, watchdog poll, and step
///    increment of the switch loop's statement-boundary preamble. Gates are
///    emitted per source statement, never per fused pair, so the step
///    counter and the step-limit/timeout cutoffs land on exactly the same
///    statement index as the unfused engines.
///  * **Specialization.** Slot accesses are split into declared forms (no
///    init check) and hidden forms (init-bit check), and the LoadMem
///    dynamic type check (Section 6.1) is resolved to a flag at translate
///    time — which is why a cache is keyed on the (module, discipline,
///    model) triple and not the module alone.
///  * **Superinstruction fusion.** A peephole over adjacent decoded ops
///    forms the hot pairs (load+binop, const+binop, cmp+branch,
///    const+store, push-arg+call) and collapses whole three-address ALU
///    statements (`d = a op b`, `d = a op const` into declared slots) to a
///    single quad op. Fusion never crosses a statement gate: a fusion is
///    only formed when none of its follow-on instructions is a StmtStart,
///    so observable step accounting is unchanged by construction.
///
/// Blocks terminate at control transfers (Jump, JumpIfZero, Ret, Trap) and
/// at calls — Call/CallExtern do not split QIR basic blocks, but the
/// executor must be able to resume at the post-call PC, so decoded blocks
/// end there. Translation may run across a join point (a jump target
/// reached by fall-through); the target merely gets its own decoded block
/// when it is also entered by a jump, trading a little duplication for
/// longer straight-line runs.
///
/// **Block linking.** Functions translate eagerly on first entry: every
/// statically-enterable PC (function entry, the validator's BlockStarts,
/// every post-call resume point) gets its block up front, and a link pass
/// then resolves each terminator's successor PCs into direct `DInstr`
/// pointers (T0/T1). Intra-function control transfers — jumps, both arms
/// of a conditional branch, the caller's post-call resume — thereby skip
/// the PC-keyed cache lookup entirely: a branch is one indirect goto into
/// the target block's code. Only function entry from outside (run start,
/// post-extern resume) and cross-function calls consult the PC-keyed
/// table, and a frame created by the *switch* loop mid-function (no link
/// state) falls back to a lazily translated, then linked, block.
///
/// The cache lives inside one Machine and is *not* shared: label addresses
/// are only meaningful to the interpreter loop that produced them, and
/// per-machine ownership keeps translation lock-free. Machine::reset keeps
/// the cache when the module and discipline are unchanged, which is what
/// makes translations survive ExecState's machine reuse across grid items.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_IR_DECODED_H
#define QCM_IR_DECODED_H

#include "ir/Qir.h"

#include <memory>
#include <vector>

namespace qcm {
namespace qir {

/// Translation-cache telemetry, ModelStats-style: plain counters cheap
/// enough to maintain unconditionally. Translate-time counters (blocks,
/// instructions, fused pairs) advance when a block is decoded; the cache-hit
/// counter advances once per block dispatch that found its translation.
/// All-zero under switch dispatch (nothing is ever translated there).
struct DispatchStats {
  uint64_t BlocksTranslated = 0;
  /// Source QIR instructions consumed by translation (fused pairs count 2).
  uint64_t InstrsTranslated = 0;
  uint64_t BlockCacheHits = 0;
  /// Fused pairs by kind, counted at translate time.
  uint64_t FusedLoadBinop = 0;   ///< PushSlot + Binary
  uint64_t FusedConstBinop = 0;  ///< PushConst + Binary
  uint64_t FusedCmpBranch = 0;   ///< {Binary, PushSlot} + JumpIfZero
  uint64_t FusedConstStore = 0;  ///< PushConst + StoreSlot
  uint64_t FusedPushArgCall = 0; ///< PushSlot + Call
  /// Whole three-address ALU statements (push, push, binop, store into a
  /// declared slot) collapsed to one op; counts quads, not pairs.
  uint64_t FusedAluStore = 0;

  uint64_t fusedTotal() const {
    return FusedLoadBinop + FusedConstBinop + FusedCmpBranch +
           FusedConstStore + FusedPushArgCall + FusedAluStore;
  }
  bool empty() const {
    return BlocksTranslated == 0 && BlockCacheHits == 0;
  }
  /// Sums \p Other into this (aggregation across runs and reports).
  void accumulate(const DispatchStats &Other);
  /// {"blocks_translated":...,"fused_load_binop":...,...}
  std::string toJson() const;
  /// Aligned human-readable rows, one counter per line.
  std::string toString() const;
};

/// Decoded opcodes. The undecorated ops mirror qir::Op one-to-one (minus
/// EnterSeq, whose only job — the statement step — is carried by its Gate);
/// the suffixed and fused forms are translate-time specializations.
enum class DOp : uint8_t {
  Gate, ///< Statement boundary: fuel check, watchdog poll, ++Steps.
  PushConst,
  PushSlotDeclared,
  PushSlotHidden,
  PushGlobal,
  Binary,
  StoreSlotDeclared,
  StoreSlotHidden,
  Drop,
  LoadMem,
  StoreMem,
  Malloc,
  FreeMem,
  Cast,
  Input,
  Output,
  // Terminators: every decoded block ends with exactly one of these (or a
  // fused form of one).
  Trap,
  Call,
  CallExtern,
  Jump,
  JumpIfZero,
  Ret,
  // Fused superinstructions.
  PushSlotBinary,     ///< load+binop
  PushConstBinary,    ///< const+binop
  PushConstStoreSlot, ///< const+store
  PushSlotCall,       ///< push-arg+call (terminator)
  PushSlotJumpIfZero, ///< cmp+branch on a slot (terminator)
  BinaryJumpIfZero,   ///< cmp+branch on a computed value (terminator)
  // Quad fusions: a whole `d = a op b` statement as one three-address op.
  SlotSlotBinaryStore,  ///< Slots[C] = Slots[A] op Slots[B]
  SlotConstBinaryStore, ///< Slots[C] = Slots[A] op Consts[B]
  NumDOps,
};

const char *dopName(DOp O);

/// Aux2 flag bits.
inline constexpr uint8_t DFlagTypeCheck = 1; ///< LoadMem: Section 6.1 check.
inline constexpr uint8_t DFlagDestHidden = 2; ///< Dest slot is hidden.

/// One decoded instruction: the computed-goto label first (the dispatch
/// load), then pre-resolved operands. Field meaning is per-DOp; see
/// InterpThreaded.cpp. By convention A/B/Aux carry the source QInstr's
/// operands, C carries a successor PC (fall-through or post-call resume;
/// for Gate, its own statement PC so the cold signal paths can pin the
/// frame's PC), and D carries the second operand set a fusion needs
/// (argc, fault message, hidden-bit index). T0/T1 are the link pass's
/// direct successor pointers: the branch-taken and fall-through targets
/// of the jump forms, and the caller-side post-call resume point of the
/// call forms (in T1).
struct DInstr {
  const void *Label = nullptr;
  const DInstr *T0 = nullptr;
  const DInstr *T1 = nullptr;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  uint32_t D = 0;
  DOp Opcode = DOp::Ret;
  uint8_t Aux = 0;
  uint8_t Aux2 = 0;
};

/// One translated straight-line run, keyed by its entry PC.
struct DecodedBlock {
  std::vector<DInstr> Code;
};

/// Per-machine translation cache: one block table per function, indexed by
/// entry PC, filled eagerly (with all blocks cross-linked) on the first
/// entry into the function. Invalidation is wholesale — the compiled
/// module or the discipline changed — mirroring how QIR modules themselves
/// are immutable once compiled.
class TranslationCache {
public:
  /// Revalidates the cache for \p M under \p TypeChecksActive (the
  /// Section 6.1 LoadMem check: Static discipline on a non-concrete
  /// model). A mismatch drops every translation. Returns true when the
  /// existing translations were kept — on false, any link-derived pointers
  /// held outside the cache (frame resume points) are dangling and must be
  /// cleared by the caller.
  bool ensure(const QirModule *M, bool TypeChecksActive);

  /// The decoded, linked block entered at \p PC of function \p FnIdx,
  /// translating the whole function (or, for a PC outside the static
  /// entry set, one extra block) on demand. This is the executor's single
  /// entry point; \p Labels maps each DOp to its computed-goto label in
  /// the executing loop, \p Stats receives the telemetry.
  const DecodedBlock *block(size_t FnIdx, uint32_t PC,
                            const void *const *Labels, DispatchStats &Stats) {
    FunctionCache &FC = Fns[FnIdx];
    if (FC.Translated && PC < FC.ByPC.size())
      if (const DecodedBlock *B = FC.ByPC[PC].get()) {
        ++Stats.BlockCacheHits;
        return B;
      }
    return translateMissing(FnIdx, PC, Labels, Stats);
  }

  /// The decoded block entered at \p PC of function \p FnIdx, or null when
  /// not yet translated (telemetry-neutral peek).
  const DecodedBlock *lookup(size_t FnIdx, uint32_t PC) const {
    const FunctionCache &FC = Fns[FnIdx];
    return PC < FC.ByPC.size() ? FC.ByPC[PC].get() : nullptr;
  }

private:
  struct FunctionCache {
    std::vector<std::unique_ptr<DecodedBlock>> ByPC;
    bool Translated = false;
  };

  /// Cold path of block(): eagerly translates and links every
  /// statically-enterable block of the function on its first entry, plus
  /// a lazy linked block for \p PC when it sits outside that entry set (a
  /// frame the switch loop left mid-function).
  const DecodedBlock *translateMissing(size_t FnIdx, uint32_t PC,
                                       const void *const *Labels,
                                       DispatchStats &Stats);

  /// Translates the single block entered at \p PC into FC.ByPC[PC].
  DecodedBlock *translateBlock(size_t FnIdx, uint32_t PC,
                               const void *const *Labels,
                               DispatchStats &Stats);

  /// Resolves the terminator's successor PCs into direct pointers. Every
  /// successor must already be translated.
  void linkBlock(FunctionCache &FC, DecodedBlock &B);

  const QirModule *M = nullptr;
  bool TypeChecks = false;
  std::vector<FunctionCache> Fns;
};

} // namespace qir
} // namespace qcm

#endif // QCM_IR_DECODED_H
