//===- ir/Decoded.cpp - Block translation and superinstruction fusion -----===//
//
// The decode/translate step of the direct-threaded engine: one straight-line
// QIR run in, one DInstr array out. The peephole below is the single place
// fusion decisions are made; InterpThreaded.cpp only executes what this
// file emitted. See Decoded.h for the block-boundary and gate rules.
//
//===----------------------------------------------------------------------===//

#include "ir/Decoded.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace qcm;
using namespace qcm::qir;

void DispatchStats::accumulate(const DispatchStats &Other) {
  BlocksTranslated += Other.BlocksTranslated;
  InstrsTranslated += Other.InstrsTranslated;
  BlockCacheHits += Other.BlockCacheHits;
  FusedLoadBinop += Other.FusedLoadBinop;
  FusedConstBinop += Other.FusedConstBinop;
  FusedCmpBranch += Other.FusedCmpBranch;
  FusedConstStore += Other.FusedConstStore;
  FusedPushArgCall += Other.FusedPushArgCall;
  FusedAluStore += Other.FusedAluStore;
}

std::string DispatchStats::toJson() const {
  JsonObject O;
  O.field("blocks_translated", BlocksTranslated);
  O.field("instrs_translated", InstrsTranslated);
  O.field("block_cache_hits", BlockCacheHits);
  O.field("fused_load_binop", FusedLoadBinop);
  O.field("fused_const_binop", FusedConstBinop);
  O.field("fused_cmp_branch", FusedCmpBranch);
  O.field("fused_const_store", FusedConstStore);
  O.field("fused_push_arg_call", FusedPushArgCall);
  O.field("fused_alu_store", FusedAluStore);
  return O.str();
}

std::string DispatchStats::toString() const {
  auto Row = [](const char *Name, uint64_t V) {
    std::string Line = "  ";
    Line += Name;
    if (Line.size() < 24)
      Line.resize(24, ' ');
    Line += std::to_string(V);
    Line += "\n";
    return Line;
  };
  std::string S;
  S += Row("blocks translated", BlocksTranslated);
  S += Row("instrs translated", InstrsTranslated);
  S += Row("block cache hits", BlockCacheHits);
  S += Row("fused load+binop", FusedLoadBinop);
  S += Row("fused const+binop", FusedConstBinop);
  S += Row("fused cmp+branch", FusedCmpBranch);
  S += Row("fused const+store", FusedConstStore);
  S += Row("fused push-arg+call", FusedPushArgCall);
  S += Row("fused alu+store", FusedAluStore);
  return S;
}

const char *qcm::qir::dopName(DOp O) {
  switch (O) {
  case DOp::Gate:
    return "gate";
  case DOp::PushConst:
    return "push_const";
  case DOp::PushSlotDeclared:
    return "push_slot";
  case DOp::PushSlotHidden:
    return "push_slot_hidden";
  case DOp::PushGlobal:
    return "push_global";
  case DOp::Binary:
    return "binary";
  case DOp::StoreSlotDeclared:
    return "store_slot";
  case DOp::StoreSlotHidden:
    return "store_slot_hidden";
  case DOp::Drop:
    return "drop";
  case DOp::LoadMem:
    return "load_mem";
  case DOp::StoreMem:
    return "store_mem";
  case DOp::Malloc:
    return "malloc";
  case DOp::FreeMem:
    return "free_mem";
  case DOp::Cast:
    return "cast";
  case DOp::Input:
    return "input";
  case DOp::Output:
    return "output";
  case DOp::Trap:
    return "trap";
  case DOp::Call:
    return "call";
  case DOp::CallExtern:
    return "call_extern";
  case DOp::Jump:
    return "jump";
  case DOp::JumpIfZero:
    return "jump_if_zero";
  case DOp::Ret:
    return "ret";
  case DOp::PushSlotBinary:
    return "push_slot+binary";
  case DOp::PushConstBinary:
    return "push_const+binary";
  case DOp::PushConstStoreSlot:
    return "push_const+store_slot";
  case DOp::PushSlotCall:
    return "push_slot+call";
  case DOp::PushSlotJumpIfZero:
    return "push_slot+jump_if_zero";
  case DOp::BinaryJumpIfZero:
    return "binary+jump_if_zero";
  case DOp::SlotSlotBinaryStore:
    return "slot_slot_binary_store";
  case DOp::SlotConstBinaryStore:
    return "slot_const_binary_store";
  case DOp::NumDOps:
    break;
  }
  return "?";
}

bool TranslationCache::ensure(const QirModule *Mod, bool TypeChecksActive) {
  if (M == Mod && TypeChecks == TypeChecksActive &&
      Fns.size() == Mod->Functions.size())
    return true;
  M = Mod;
  TypeChecks = TypeChecksActive;
  Fns.clear();
  Fns.resize(Mod->Functions.size());
  return false;
}

const DecodedBlock *
TranslationCache::translateMissing(size_t FnIdx, uint32_t PC,
                                   const void *const *Labels,
                                   DispatchStats &Stats) {
  assert(M && "translation cache not configured");
  const QFunction &Fn = M->Functions[FnIdx];
  FunctionCache &FC = Fns[FnIdx];
  if (!FC.Translated) {
    // First entry into the function: translate every statically-enterable
    // block — the entry, the validator's BlockStarts, and each post-call
    // resume point — then link them all, so every terminator's successors
    // resolve to direct pointers.
    std::vector<uint32_t> Entries;
    Entries.push_back(0);
    Entries.insert(Entries.end(), Fn.BlockStarts.begin(),
                   Fn.BlockStarts.end());
    for (uint32_t At = 0; At + 1 < Fn.Code.size(); ++At)
      if (Fn.Code[At].Opcode == Op::Call ||
          Fn.Code[At].Opcode == Op::CallExtern)
        Entries.push_back(At + 1);
    std::sort(Entries.begin(), Entries.end());
    Entries.erase(std::unique(Entries.begin(), Entries.end()), Entries.end());
    for (uint32_t E : Entries)
      translateBlock(FnIdx, E, Labels, Stats);
    for (uint32_t E : Entries)
      linkBlock(FC, *FC.ByPC[E]);
    FC.Translated = true;
  }
  if (const DecodedBlock *B = PC < FC.ByPC.size() ? FC.ByPC[PC].get()
                                                  : nullptr)
    return B;
  // A PC outside the static entry set: a frame the switch loop created
  // mid-function, resumed here. Its successors are all in the entry set,
  // so the lazy block links immediately.
  DecodedBlock *B = translateBlock(FnIdx, PC, Labels, Stats);
  linkBlock(FC, *B);
  return B;
}

void TranslationCache::linkBlock(FunctionCache &FC, DecodedBlock &B) {
  auto Target = [&](uint32_t PC) -> const DInstr * {
    const DecodedBlock *TB = FC.ByPC[PC].get();
    assert(TB && "link target was not translated");
    return TB->Code.data();
  };
  DInstr &Term = B.Code.back();
  switch (Term.Opcode) {
  case DOp::Jump:
    Term.T0 = Target(Term.A);
    break;
  case DOp::JumpIfZero:
    Term.T0 = Target(Term.A);
    Term.T1 = Target(Term.C);
    break;
  case DOp::PushSlotJumpIfZero:
  case DOp::BinaryJumpIfZero:
    Term.T0 = Target(Term.B);
    Term.T1 = Target(Term.C);
    break;
  case DOp::Call:
  case DOp::PushSlotCall:
  case DOp::CallExtern:
    // The caller-side resume point; the callee's entry is cross-function
    // and resolved through block() at call time.
    Term.T1 = Target(Term.C);
    break;
  default: // Ret, Trap: no successors.
    break;
  }
}

DecodedBlock *TranslationCache::translateBlock(size_t FnIdx, uint32_t EntryPC,
                                               const void *const *Labels,
                                               DispatchStats &Stats) {
  const QFunction &Fn = M->Functions[FnIdx];
  FunctionCache &FC = Fns[FnIdx];
  if (FC.ByPC.size() < Fn.Code.size())
    FC.ByPC.resize(Fn.Code.size());
  if (DecodedBlock *Existing = FC.ByPC[EntryPC].get())
    return Existing;

  auto Block = std::make_unique<DecodedBlock>();
  std::vector<DInstr> &Out = Block->Code;
  auto Emit = [&](DOp O) -> DInstr & {
    DInstr DI;
    DI.Opcode = O;
    DI.Label = Labels[static_cast<size_t>(O)];
    Out.push_back(DI);
    return Out.back();
  };
  // Hidden-bit index of a dest slot, folded into D so the executor never
  // re-derives it; DFlagDestHidden gates its use.
  auto DestFlags = [&](uint32_t Slot, DInstr &DI) {
    if (Slot != NoSlot && Slot >= Fn.NumDeclaredSlots) {
      DI.Aux2 |= DFlagDestHidden;
      DI.D = Slot - Fn.NumDeclaredSlots;
    }
  };

  uint32_t PC = EntryPC;
  for (bool Done = false; !Done;) {
    assert(PC < Fn.Code.size() && "translation ran off the code");
    const QInstr &I = Fn.Code[PC];
    if (I.StmtStart)
      // C = the statement's own PC: the signal paths pin the frame there,
      // so a cut-off run's frame state matches the switch loop's.
      Emit(DOp::Gate).C = PC;
    // Fusion candidates: the following instruction, unless it opens the
    // next statement (a gate must sit between the two ops) — which also
    // keeps fusion inside one basic block, since every jump target is a
    // statement boundary.
    const QInstr *Next = PC + 1 < Fn.Code.size() ? &Fn.Code[PC + 1] : nullptr;
    if (Next && Next->StmtStart)
      Next = nullptr;
    uint32_t Consumed = 1;

    switch (I.Opcode) {
    case Op::PushConst:
      if (Next && Next->Opcode == Op::Binary) {
        DInstr &DI = Emit(DOp::PushConstBinary);
        DI.A = I.A;
        DI.Aux = Next->Aux;
        ++Stats.FusedConstBinop;
        Consumed = 2;
        break;
      }
      if (Next && Next->Opcode == Op::StoreSlot &&
          Next->A < Fn.NumDeclaredSlots) {
        DInstr &DI = Emit(DOp::PushConstStoreSlot);
        DI.A = I.A;
        DI.B = Next->A;
        ++Stats.FusedConstStore;
        Consumed = 2;
        break;
      }
      Emit(DOp::PushConst).A = I.A;
      break;

    case Op::PushSlot:
      if (I.A < Fn.NumDeclaredSlots) {
        // Quad fusion first (greedy pairs would strand the store): a whole
        // `d = a op b` / `d = a op const` statement into a declared slot
        // becomes one three-address op. All three follow-on instructions
        // must sit inside this statement (no StmtStart), which also keeps
        // the quad inside the basic block.
        const QInstr *N2 = PC + 3 < Fn.Code.size() && !Fn.Code[PC + 2].StmtStart
                               ? &Fn.Code[PC + 2]
                               : nullptr;
        const QInstr *N3 =
            N2 && !Fn.Code[PC + 3].StmtStart ? &Fn.Code[PC + 3] : nullptr;
        if (Next && N3 && N2->Opcode == Op::Binary &&
            N3->Opcode == Op::StoreSlot && N3->A < Fn.NumDeclaredSlots &&
            (Next->Opcode == Op::PushConst ||
             (Next->Opcode == Op::PushSlot && Next->A < Fn.NumDeclaredSlots))) {
          DInstr &DI = Emit(Next->Opcode == Op::PushSlot
                                ? DOp::SlotSlotBinaryStore
                                : DOp::SlotConstBinaryStore);
          DI.A = I.A;
          DI.B = Next->A;
          DI.Aux = N2->Aux;
          DI.C = N3->A;
          ++Stats.FusedAluStore;
          Consumed = 4;
          break;
        }
        if (Next && Next->Opcode == Op::Binary) {
          DInstr &DI = Emit(DOp::PushSlotBinary);
          DI.A = I.A;
          DI.Aux = Next->Aux;
          ++Stats.FusedLoadBinop;
          Consumed = 2;
          break;
        }
        if (Next && Next->Opcode == Op::JumpIfZero) {
          DInstr &DI = Emit(DOp::PushSlotJumpIfZero);
          DI.A = I.A;
          DI.B = Next->A;
          DI.C = PC + 2;
          DI.D = Next->B;
          ++Stats.FusedCmpBranch;
          Consumed = 2;
          Done = true;
          break;
        }
        if (Next && Next->Opcode == Op::Call) {
          DInstr &DI = Emit(DOp::PushSlotCall);
          DI.A = I.A;
          DI.B = Next->A;
          DI.C = PC + 2;
          DI.D = Next->B;
          ++Stats.FusedPushArgCall;
          Consumed = 2;
          Done = true;
          break;
        }
        Emit(DOp::PushSlotDeclared).A = I.A;
        break;
      }
      {
        DInstr &DI = Emit(DOp::PushSlotHidden);
        DI.A = I.A;
        DI.B = I.A - Fn.NumDeclaredSlots;
      }
      break;

    case Op::PushGlobal:
      Emit(DOp::PushGlobal).A = I.A;
      break;

    case Op::Binary:
      if (Next && Next->Opcode == Op::JumpIfZero) {
        DInstr &DI = Emit(DOp::BinaryJumpIfZero);
        DI.Aux = I.Aux;
        DI.B = Next->A;
        DI.C = PC + 2;
        DI.D = Next->B;
        ++Stats.FusedCmpBranch;
        Consumed = 2;
        Done = true;
        break;
      }
      Emit(DOp::Binary).Aux = I.Aux;
      break;

    case Op::Trap:
      Emit(DOp::Trap).A = I.A;
      Done = true;
      break;

    case Op::StoreSlot:
      if (I.A < Fn.NumDeclaredSlots) {
        Emit(DOp::StoreSlotDeclared).A = I.A;
      } else {
        DInstr &DI = Emit(DOp::StoreSlotHidden);
        DI.A = I.A;
        DI.B = I.A - Fn.NumDeclaredSlots;
      }
      break;

    case Op::Drop:
      Emit(DOp::Drop);
      break;

    case Op::LoadMem: {
      DInstr &DI = Emit(DOp::LoadMem);
      DI.A = I.A;
      DI.B = I.B;
      DI.Aux = I.Aux;
      if (TypeChecks)
        DI.Aux2 |= DFlagTypeCheck;
      DestFlags(I.A, DI);
      break;
    }

    case Op::StoreMem:
      Emit(DOp::StoreMem);
      break;

    case Op::Malloc: {
      DInstr &DI = Emit(DOp::Malloc);
      DI.A = I.A;
      DestFlags(I.A, DI);
      break;
    }

    case Op::FreeMem:
      Emit(DOp::FreeMem);
      break;

    case Op::Cast: {
      DInstr &DI = Emit(DOp::Cast);
      DI.A = I.A;
      DI.Aux = I.Aux;
      DestFlags(I.A, DI);
      break;
    }

    case Op::Input: {
      DInstr &DI = Emit(DOp::Input);
      DI.A = I.A;
      DestFlags(I.A, DI);
      break;
    }

    case Op::Output:
      Emit(DOp::Output);
      break;

    case Op::Call: {
      DInstr &DI = Emit(DOp::Call);
      DI.A = I.A;
      DI.B = I.B;
      DI.C = PC + 1;
      Done = true;
      break;
    }

    case Op::CallExtern: {
      DInstr &DI = Emit(DOp::CallExtern);
      DI.A = I.A;
      DI.B = I.B;
      DI.C = PC + 1;
      Done = true;
      break;
    }

    case Op::Jump:
      Emit(DOp::Jump).A = I.A;
      Done = true;
      break;

    case Op::JumpIfZero: {
      DInstr &DI = Emit(DOp::JumpIfZero);
      DI.A = I.A;
      DI.B = I.B;
      DI.C = PC + 1;
      Done = true;
      break;
    }

    case Op::EnterSeq:
      // The statement step was the whole instruction; the gate above
      // carries it.
      break;

    case Op::Ret:
      Emit(DOp::Ret);
      Done = true;
      break;
    }

    Stats.InstrsTranslated += Consumed;
    PC += Consumed;
  }

  ++Stats.BlocksTranslated;
  FC.ByPC[EntryPC] = std::move(Block);
  return FC.ByPC[EntryPC].get();
}
