//===- ir/Qir.cpp ---------------------------------------------------------===//

#include "ir/Qir.h"

#include <algorithm>
#include <deque>

using namespace qcm;
using namespace qcm::qir;

const char *qcm::qir::opName(Op O) {
  switch (O) {
  case Op::PushConst:
    return "push.const";
  case Op::PushSlot:
    return "push.slot";
  case Op::PushGlobal:
    return "push.global";
  case Op::Binary:
    return "binary";
  case Op::Trap:
    return "trap";
  case Op::StoreSlot:
    return "store.slot";
  case Op::Drop:
    return "drop";
  case Op::LoadMem:
    return "load.mem";
  case Op::StoreMem:
    return "store.mem";
  case Op::Malloc:
    return "malloc";
  case Op::FreeMem:
    return "free";
  case Op::Cast:
    return "cast";
  case Op::Input:
    return "input";
  case Op::Output:
    return "output";
  case Op::Call:
    return "call";
  case Op::CallExtern:
    return "call.extern";
  case Op::Jump:
    return "jump";
  case Op::JumpIfZero:
    return "jump.ifz";
  case Op::EnterSeq:
    return "enter.seq";
  case Op::Ret:
    return "ret";
  }
  return "?";
}

namespace {

std::string instrToString(const QirModule &M, const QFunction &F,
                          const QInstr &I) {
  std::string Text = I.StmtStart ? "! " : "  ";
  Text += opName(I.Opcode);
  auto slotName = [&](uint32_t Slot) -> std::string {
    if (Slot == NoSlot)
      return "_";
    std::string Name = Slot < F.SlotNames.size() ? F.SlotNames[Slot] : "";
    Name += "#";
    Name += std::to_string(Slot);
    return Name;
  };
  switch (I.Opcode) {
  case Op::PushConst:
    Text += " ";
    Text += M.ConstPool[I.A].toString();
    break;
  case Op::PushSlot:
  case Op::StoreSlot:
    Text += " ";
    Text += slotName(I.A);
    break;
  case Op::PushGlobal:
    Text += " ";
    Text += M.GlobalNames[I.A];
    break;
  case Op::Binary:
    Text += " ";
    Text += binaryOpSpelling(static_cast<BinaryOp>(I.Aux));
    break;
  case Op::Trap:
    Text += " \"";
    Text += M.StringPool[I.A];
    Text += "\"";
    break;
  case Op::LoadMem:
  case Op::Malloc:
  case Op::Input:
    Text += " -> ";
    Text += slotName(I.A);
    break;
  case Op::Cast:
    Text += I.Aux == 0 ? " (int)" : " (ptr)";
    Text += " -> ";
    Text += slotName(I.A);
    break;
  case Op::Call:
    Text += " " + M.Functions[I.A].Name + "/" + std::to_string(I.B);
    break;
  case Op::CallExtern:
    Text += " " + M.StringPool[I.A] + "/" + std::to_string(I.B);
    break;
  case Op::Jump:
    Text += " @" + std::to_string(I.A);
    break;
  case Op::JumpIfZero:
    Text += " @" + std::to_string(I.A);
    break;
  default:
    break;
  }
  return Text;
}

} // namespace

std::string QirModule::toString() const {
  std::string Text;
  for (const QFunction &F : Functions) {
    if (F.IsExtern) {
      Text += "extern " + F.Name + "/" + std::to_string(F.NumParams) + "\n";
      continue;
    }
    Text += F.Name + "/" + std::to_string(F.NumParams) + " (slots:";
    for (uint32_t S = 0; S < F.NumSlots; ++S)
      Text += " " + F.SlotNames[S];
    Text += ")\n";
    for (uint32_t PC = 0; PC < F.Code.size(); ++PC) {
      if (std::binary_search(F.BlockStarts.begin(), F.BlockStarts.end(), PC))
        Text += " b" + std::to_string(PC) + ":\n";
      Text += "   " + std::to_string(PC) + ": " +
              instrToString(*this, F, F.Code[PC]) + "\n";
    }
  }
  return Text;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

/// Net eval-stack effect of one instruction; Trap/Ret never fall through.
int qcm::qir::stackDelta(const QInstr &I) {
  switch (I.Opcode) {
  case Op::PushConst:
  case Op::PushSlot:
  case Op::PushGlobal:
    return 1;
  case Op::Binary: // pop 2, push 1
  case Op::StoreSlot:
  case Op::Drop:
  case Op::LoadMem:
  case Op::Malloc:
  case Op::FreeMem:
  case Op::Cast:
  case Op::Output:
  case Op::JumpIfZero:
    return -1;
  case Op::StoreMem:
    return -2;
  case Op::Call:
  case Op::CallExtern:
    return -static_cast<int>(I.B);
  case Op::Trap:
  case Op::Jump:
  case Op::EnterSeq:
  case Op::Input:
  case Op::Ret:
    return 0;
  }
  return 0;
}

namespace {

std::string validateFunction(const QirModule &M, const QFunction &F) {
  auto Where = [&](uint32_t PC) {
    return "function '" + F.Name + "' at " + std::to_string(PC) + ": ";
  };
  if (F.IsExtern)
    return F.Code.empty() ? ""
                          : "extern function '" + F.Name + "' has code";
  if (F.Code.empty())
    return "function '" + F.Name + "' has no code";
  if (F.Code.back().Opcode != Op::Ret)
    return "function '" + F.Name + "' does not end with ret";
  if (F.SlotNames.size() != F.NumSlots)
    return "function '" + F.Name + "' slot names are not frame-dense";
  if (F.SlotTypes.size() != F.NumDeclaredSlots ||
      F.NumDeclaredSlots > F.NumSlots ||
      F.ParamSlots.size() != F.NumParams)
    return "function '" + F.Name + "' slot layout is inconsistent";
  for (uint32_t Slot : F.ParamSlots)
    if (Slot >= F.NumDeclaredSlots)
      return "function '" + F.Name + "' parameter slot out of range";
  if (!std::is_sorted(F.BlockStarts.begin(), F.BlockStarts.end()))
    return "function '" + F.Name + "' block starts are not sorted";
  if (F.BlockStarts.empty() || F.BlockStarts.front() != 0)
    return "function '" + F.Name + "' entry is not a block start";

  auto IsBlockStart = [&](uint32_t PC) {
    return std::binary_search(F.BlockStarts.begin(), F.BlockStarts.end(), PC);
  };

  for (uint32_t PC = 0; PC < F.Code.size(); ++PC) {
    const QInstr &I = F.Code[PC];
    switch (I.Opcode) {
    case Op::PushConst:
      if (I.A >= M.ConstPool.size())
        return Where(PC) + "constant index out of range";
      break;
    case Op::PushGlobal:
      if (I.A >= M.GlobalNames.size())
        return Where(PC) + "global index out of range";
      break;
    case Op::PushSlot:
    case Op::StoreSlot:
      if (I.A >= F.NumSlots)
        return Where(PC) + "slot index out of range";
      break;
    case Op::LoadMem:
    case Op::Malloc:
    case Op::Cast:
    case Op::Input:
      if (I.A != NoSlot && I.A >= F.NumSlots)
        return Where(PC) + "destination slot out of range";
      break;
    case Op::Trap:
      if (I.A >= M.StringPool.size())
        return Where(PC) + "trap message out of range";
      break;
    case Op::Call:
      if (I.A >= M.Functions.size())
        return Where(PC) + "callee index out of range";
      if (M.Functions[I.A].IsExtern)
        return Where(PC) + "direct call to an extern";
      if (M.Functions[I.A].NumParams != I.B)
        return Where(PC) + "argument count does not match the callee";
      break;
    case Op::CallExtern:
      if (I.A >= M.StringPool.size())
        return Where(PC) + "extern name out of range";
      break;
    case Op::Jump:
    case Op::JumpIfZero:
      if (I.A >= F.Code.size())
        return Where(PC) + "jump target out of range";
      if (!IsBlockStart(I.A))
        return Where(PC) + "jump target is not a block start";
      break;
    default:
      break;
    }
  }

  // Abstract eval-stack depths: 0 at every block start, consistent along
  // every path, 0 at Ret, and statements start at depth 0.
  std::vector<int> DepthAt(F.Code.size(), -1);
  std::deque<uint32_t> Work;
  DepthAt[0] = 0;
  Work.push_back(0);
  auto Flow = [&](uint32_t To, int Depth) -> std::string {
    if (To >= F.Code.size())
      return "flow off the end of the code";
    if (DepthAt[To] == -1) {
      DepthAt[To] = Depth;
      Work.push_back(To);
    } else if (DepthAt[To] != Depth) {
      return "inconsistent stack depth at " + std::to_string(To);
    }
    return "";
  };
  int MaxDepth = 0;
  while (!Work.empty()) {
    uint32_t PC = Work.front();
    Work.pop_front();
    const QInstr &I = F.Code[PC];
    int Before = DepthAt[PC];
    if (I.StmtStart && Before != 0)
      return Where(PC) + "statement does not start at stack depth 0";
    if (IsBlockStart(PC) && Before != 0)
      return Where(PC) + "block does not start at stack depth 0";
    int After = Before + stackDelta(I);
    if (After < 0)
      return Where(PC) + "eval stack underflows";
    MaxDepth = std::max(MaxDepth, After);
    std::string Err;
    switch (I.Opcode) {
    case Op::Trap:
      break; // no successors
    case Op::Ret:
      if (Before != 0)
        return Where(PC) + "ret with a non-empty eval stack";
      break;
    case Op::Jump:
      Err = Flow(I.A, After);
      break;
    case Op::JumpIfZero:
      Err = Flow(I.A, After);
      if (Err.empty())
        Err = Flow(PC + 1, After);
      break;
    default:
      Err = Flow(PC + 1, After);
      break;
    }
    if (!Err.empty())
      return Where(PC) + Err;
  }
  // The executor trusts MaxEvalDepth to bound every push: an undersized
  // declaration would let the flat eval stack overflow its reservation.
  if (static_cast<int>(F.MaxEvalDepth) < MaxDepth)
    return "function '" + F.Name + "': MaxEvalDepth " +
           std::to_string(F.MaxEvalDepth) + " is below the reachable depth " +
           std::to_string(MaxDepth);
  return "";
}

} // namespace

std::string qcm::qir::validateModule(const QirModule &M) {
  if (!M.Source)
    return "module has no source program";
  if (M.Functions.size() != M.Source->Functions.size())
    return "function table does not match the source program";
  if (M.GlobalNames.size() != M.Source->Globals.size())
    return "global table does not match the source program";
  for (const QFunction &F : M.Functions)
    if (std::string Err = validateFunction(M, F); !Err.empty())
      return Err;
  return "";
}
