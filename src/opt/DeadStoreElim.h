//===- opt/DeadStoreElim.h - Liveness-driven dead store removal -*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward dead-location analysis over memory events: walking each function
/// bottom-up, the pass tracks the set of locations (AddrKey) whose current
/// value can no longer be observed, and removes stores into them. Two modes
/// with different standing under the paper's models:
///
/// * shadowed stores — a store overwritten by a later store to the same
///   location, or to a block that is freed, with no possibly-aliasing load
///   or call in between. Valid under *all* models: the overwritten value is
///   unobservable in source and target alike, and removing a store can only
///   remove a potential fault (which only shrinks the behavior set).
/// * trailing stores into owned blocks — a store into a block owned by a
///   non-escaping malloc pointer (ownedMallocPointers) that no load of this
///   function observes before the function returns; such facts also survive
///   calls (no callee or context can forge the address). This is the DSE
///   half of the paper's Section 5.1 running example, valid under the
///   logical-family models and *invalid* under the concrete model, where a
///   context can guess the block's concrete address and read it.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_DEADSTORElIM_H
#define QCM_OPT_DEADSTORElIM_H

#include "opt/Pass.h"

namespace qcm {

/// Which categories of dead stores may be removed.
struct DseOptions {
  /// Stores shadowed by later stores/frees; valid under all models.
  bool RemoveShadowedStores = true;
  /// Treat owned blocks as dead at function exit and keep their facts
  /// across calls; valid under the logical-family models only.
  bool OwnedBlocks = true;
};

/// The liveness-driven dead store elimination pass.
class DeadStoreElimPass : public FunctionPass {
public:
  explicit DeadStoreElimPass(DseOptions Options = {}) : Options(Options) {}

  std::string name() const override { return "dse"; }
  bool runOnFunction(FunctionDecl &F, const Program &P) override;

private:
  DseOptions Options;
};

} // namespace qcm

#endif // QCM_OPT_DEADSTORElIM_H
