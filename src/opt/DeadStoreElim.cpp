//===- opt/DeadStoreElim.cpp ----------------------------------------------===//

#include "opt/DeadStoreElim.h"

#include "opt/MemoryLiveness.h"

#include <algorithm>

using namespace qcm;

namespace {

using DeadSet = std::vector<AddrKey>;

class StoreEliminator {
public:
  StoreEliminator(const DseOptions &Options, std::set<std::string> Owned)
      : Options(Options), Owned(std::move(Owned)) {}

  bool Changed = false;

  /// Backward walk: \p Dead is the dead-location set *after* \p I; on
  /// return it is the set *before* \p I. Sets \p Remove when \p I is a
  /// removable dead store.
  void processInstr(Instr &I, DeadSet &Dead, bool &Remove) {
    Remove = false;
    switch (I.InstrKind) {
    case Instr::Kind::Seq: {
      for (auto It = I.Stmts.rbegin(); It != I.Stmts.rend();) {
        bool RemoveChild = false;
        processInstr(**It, Dead, RemoveChild);
        if (RemoveChild) {
          It = std::vector<std::unique_ptr<Instr>>::reverse_iterator(
              I.Stmts.erase(std::next(It).base()));
          Changed = true;
        } else {
          ++It;
        }
      }
      return;
    }

    case Instr::Kind::Store: {
      std::optional<AddrKey> Key = addrKeyFor(*I.Addr);
      if (Key) {
        for (const AddrKey &D : Dead) {
          if (coversLocation(D, *Key)) {
            Remove = true;
            return;
          }
        }
        // A kept store makes the location's previous value dead above;
        // writing observes nothing, so the rest of the set stands. A store
        // through an unrecognized address also observes nothing — it may
        // overwrite a dead location, never read one.
        if (Options.RemoveShadowedStores)
          addDead(Dead, *Key);
      }
      return;
    }

    case Instr::Kind::Load: {
      // The load observes its location: drop every possibly-aliasing
      // fact. An unrecognized address can point anywhere except into an
      // owned block (the owner's value never escaped).
      std::optional<AddrKey> Key = addrKeyFor(*I.Addr);
      killObserved(Dead, Key);
      killBase(Dead, I.Var);
      return;
    }

    case Instr::Kind::Assign: {
      if (I.Rhs->RExpKind == RExp::Kind::Free) {
        // The freed block's contents become unreachable: any later access
        // through a stale alias is undefined behavior in source and target
        // alike, so stores above the free into this block are dead.
        if (Options.RemoveShadowedStores) {
          if (std::optional<AddrKey> Key = addrKeyFor(*I.Rhs->Arg)) {
            Key->WholeBase = true;
            Key->Offset = 0;
            addDead(Dead, *Key);
          }
        }
      }
      if (!I.Var.empty())
        killBase(Dead, I.Var);
      return;
    }

    case Instr::Kind::Call: {
      // A callee (or, through an extern, an arbitrary context) may load
      // any reachable location — but never an owned block, whose logical
      // address cannot be forged (logical-family models only).
      if (Options.OwnedBlocks) {
        Dead.erase(std::remove_if(Dead.begin(), Dead.end(),
                                  [this](const AddrKey &D) {
                                    return D.BaseKind != AddrKey::Base::Var ||
                                           !Owned.count(D.Name);
                                  }),
                   Dead.end());
      } else {
        Dead.clear();
      }
      return;
    }

    case Instr::Kind::If: {
      DeadSet ThenDead = Dead;
      DeadSet ElseDead = Dead;
      bool RemoveChild = false;
      processInstr(*I.Then, ThenDead, RemoveChild);
      if (I.Else)
        processInstr(*I.Else, ElseDead, RemoveChild);
      Dead = intersect(ThenDead, ElseDead);
      return;
    }

    case Instr::Kind::While: {
      // Conservative: the body is analyzed with nothing assumed dead (a
      // back edge may route any store to any load of a later iteration),
      // and nothing is dead before the loop.
      DeadSet BodyDead;
      bool RemoveChild = false;
      processInstr(*I.Body, BodyDead, RemoveChild);
      Dead.clear();
      return;
    }
    }
  }

private:
  const DseOptions &Options;
  const std::set<std::string> Owned;

  static void addDead(DeadSet &Dead, const AddrKey &Key) {
    for (const AddrKey &D : Dead)
      if (coversLocation(D, Key))
        return;
    Dead.push_back(Key);
  }

  void killObserved(DeadSet &Dead, const std::optional<AddrKey> &Key) {
    Dead.erase(std::remove_if(Dead.begin(), Dead.end(),
                              [&](const AddrKey &D) {
                                if (Key)
                                  return mayAlias(D, *Key, Owned);
                                return D.BaseKind != AddrKey::Base::Var ||
                                       !Owned.count(D.Name);
                              }),
               Dead.end());
  }

  /// A (re)definition of \p Var above invalidates facts keyed on it.
  static void killBase(DeadSet &Dead, const std::string &Var) {
    Dead.erase(std::remove_if(Dead.begin(), Dead.end(),
                              [&Var](const AddrKey &D) {
                                return D.BaseKind == AddrKey::Base::Var &&
                                       D.Name == Var;
                              }),
               Dead.end());
  }

  static DeadSet intersect(const DeadSet &A, const DeadSet &B) {
    DeadSet Out;
    for (const AddrKey &K : A)
      if (std::find(B.begin(), B.end(), K) != B.end())
        Out.push_back(K);
    return Out;
  }
};

} // namespace

bool DeadStoreElimPass::runOnFunction(FunctionDecl &F, const Program &P) {
  (void)P;
  if (!F.Body)
    return false;
  std::set<std::string> Owned =
      Options.OwnedBlocks ? ownedMallocPointers(F) : std::set<std::string>{};
  StoreEliminator E(Options, Owned);
  DeadSet Dead;
  if (Options.OwnedBlocks) {
    // Nothing observes an owned block after the function returns: its
    // pointer never escaped and the language has no return values.
    for (const std::string &V : Owned)
      Dead.push_back(AddrKey{AddrKey::Base::Var, V, 0, true});
  }
  bool RemoveAll = false;
  E.processInstr(*F.Body, Dead, RemoveAll);
  return E.Changed;
}
