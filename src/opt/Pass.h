//===- opt/Pass.h - Optimization pass framework -----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformations whose correctness the paper studies are implemented
/// as AST-to-AST passes. Passes only *perform* rewrites; their validity
/// under each memory model is established separately by the refinement and
/// simulation checkers — that separation is the point of the reproduction
/// (a pass like dead-allocation elimination is one and the same
/// transformation whether or not the model justifies it).
///
/// Pipelines make the seam explicit: a PassPipeline is a tree of pass
/// elements and fixpoint groups executed in order, and every application of
/// a pass (one pass over every function, within one iteration of its
/// enclosing fixpoint group) can be handed to an external validator — the
/// refinement machinery — together with before/after snapshots and full
/// provenance. A rejected application rolls the program back and stops the
/// pipeline, which is what turns qcm-opt into a translation-validated
/// compiler (see docs/OPTIMIZER.md).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_PASS_H
#define QCM_OPT_PASS_H

#include "lang/Ast.h"
#include "support/Telemetry.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qcm {

/// A function-level transformation.
class FunctionPass {
public:
  virtual ~FunctionPass();

  virtual std::string name() const = 0;

  /// Rewrites \p F (a defined function of \p P) in place; returns true if
  /// anything changed.
  virtual bool runOnFunction(FunctionDecl &F, const Program &P) = 0;
};

/// Number of instructions in \p F's body: every node of the instruction
/// tree except bare sequences (If/While headers count as one each).
uint64_t countInstructions(const FunctionDecl &F);

/// Telemetry for one pass, accumulated across every invocation of a
/// pipeline run (all functions, all fixpoint iterations).
struct PassMetrics {
  std::string PassName;
  /// runOnFunction() calls.
  uint64_t Invocations = 0;
  /// Invocations that reported a change.
  uint64_t Rewrites = 0;
  /// Instructions in the function immediately before/after each
  /// invocation, summed; Before - After is the net shrinkage this pass
  /// achieved.
  uint64_t InstrsBefore = 0;
  uint64_t InstrsAfter = 0;
  /// Wall-clock time spent inside runOnFunction().
  double WallSeconds = 0;

  std::string toString() const;
  std::string toJson() const;
};

/// Provenance of one pass application: one pass run over every defined
/// function of the program, within one iteration of its enclosing fixpoint
/// group.
struct PassApplication {
  /// The pass's pipeline token (registry name, or FunctionPass::name()).
  std::string Pass;
  /// Index of the pass element in pre-order over the pipeline tree.
  unsigned Element = 0;
  /// Iteration of the innermost enclosing fixpoint group (0 outside one).
  unsigned Iteration = 0;
  bool Changed = false;
  /// Names of the functions this application rewrote.
  std::vector<std::string> ChangedFunctions;

  std::string toString() const;
};

/// Called after every pass application that changed the program, with
/// snapshots of the program before and after. Returning a message rejects
/// the application: the pipeline rolls the program back to Before, stops,
/// and reports the failure with the application's provenance.
using PassValidator = std::function<std::optional<std::string>(
    const Program &Before, const Program &After, const PassApplication &App)>;

/// Outcome of one PassPipeline::run().
struct PipelineResult {
  bool Changed = false;
  /// Per-token metrics in first-appearance (pre-order) order; elements
  /// sharing a token accumulate into one entry.
  std::vector<PassMetrics> Metrics;
  /// Every application, in execution order.
  std::vector<PassApplication> Applications;
  /// True when some fixpoint group was still changing at its iteration
  /// bound.
  bool HitIterationBound = false;
  /// Set when the validator rejected an application (program rolled back
  /// to the state before it).
  std::optional<PassApplication> Failed;
  std::string FailureDetail;

  /// Iterations the last top-level fixpoint group executed (0 when there
  /// was none).
  unsigned lastIterations() const;
};

/// An executable pipeline: a sequence of elements, each either a single
/// pass or a fixpoint group of nested elements iterated until quiescent
/// (bounded by MaxIterations). Built directly, or from a PipelineSpec (see
/// opt/PipelineSpec.h).
class PassPipeline {
public:
  struct Element {
    /// Leaf: the pass to run (non-owning; see own()). Null for a group.
    FunctionPass *Pass = nullptr;
    /// Display/provenance token of a leaf.
    std::string Token;
    /// Fixpoint group members (when Pass is null).
    std::vector<Element> Children;
    /// Group iteration bound.
    unsigned MaxIterations = 8;
  };

  std::vector<Element> Elements;

  /// Takes ownership of \p Pass and returns the raw pointer for use in an
  /// Element. Owned passes live as long as the pipeline.
  FunctionPass *own(std::unique_ptr<FunctionPass> Pass);

  static Element leaf(FunctionPass *Pass, std::string Token = "");
  static Element fix(std::vector<Element> Children,
                     unsigned MaxIterations = 8);

  /// Runs the pipeline over \p P. With a validator, every application that
  /// changed the program is checked; a rejection rolls \p P back to the
  /// snapshot before the offending application and stops the pipeline
  /// (PipelineResult::Failed).
  PipelineResult run(Program &P, const PassValidator &Validate = nullptr);

private:
  std::vector<std::unique_ptr<FunctionPass>> Owned;
};

/// Runs passes over every defined function of a program, iterating until a
/// fixed point (bounded by MaxIterations). A thin forward to PassPipeline:
/// the registered passes form one top-level fixpoint group.
class PassManager {
public:
  void add(std::unique_ptr<FunctionPass> Pass);

  /// Applies all passes to \p P. Returns true if anything changed.
  bool run(Program &P, unsigned MaxIterations = 4);

  /// Per-pass metrics of the most recent run(), one entry per registered
  /// pass in registration order. Empty before the first run.
  const std::vector<PassMetrics> &metrics() const { return Last.Metrics; }

  /// Fixpoint iterations the most recent run() executed (including the
  /// final quiescent one), and whether it was still changing at the bound.
  unsigned lastIterations() const { return Last.lastIterations(); }
  bool hitIterationBound() const { return Last.HitIterationBound; }

private:
  std::vector<std::unique_ptr<FunctionPass>> Passes;
  PipelineResult Last;
};

} // namespace qcm

#endif // QCM_OPT_PASS_H
