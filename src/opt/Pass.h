//===- opt/Pass.h - Optimization pass framework -----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformations whose correctness the paper studies are implemented
/// as AST-to-AST passes. Passes only *perform* rewrites; their validity
/// under each memory model is established separately by the refinement and
/// simulation checkers — that separation is the point of the reproduction
/// (a pass like dead-allocation elimination is one and the same
/// transformation whether or not the model justifies it).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_PASS_H
#define QCM_OPT_PASS_H

#include "lang/Ast.h"
#include "support/Telemetry.h"

#include <memory>
#include <string>
#include <vector>

namespace qcm {

/// A function-level transformation.
class FunctionPass {
public:
  virtual ~FunctionPass();

  virtual std::string name() const = 0;

  /// Rewrites \p F (a defined function of \p P) in place; returns true if
  /// anything changed.
  virtual bool runOnFunction(FunctionDecl &F, const Program &P) = 0;
};

/// Number of instructions in \p F's body: every node of the instruction
/// tree except bare sequences (If/While headers count as one each).
uint64_t countInstructions(const FunctionDecl &F);

/// Telemetry for one pass, accumulated across every invocation of a
/// PassManager::run() (all functions, all fixpoint iterations).
struct PassMetrics {
  std::string PassName;
  /// runOnFunction() calls.
  uint64_t Invocations = 0;
  /// Invocations that reported a change.
  uint64_t Rewrites = 0;
  /// Instructions in the function immediately before/after each
  /// invocation, summed; Before - After is the net shrinkage this pass
  /// achieved.
  uint64_t InstrsBefore = 0;
  uint64_t InstrsAfter = 0;
  /// Wall-clock time spent inside runOnFunction().
  double WallSeconds = 0;

  std::string toString() const;
  std::string toJson() const;
};

/// Runs passes over every defined function of a program, iterating until a
/// fixed point (bounded by MaxIterations).
class PassManager {
public:
  void add(std::unique_ptr<FunctionPass> Pass);

  /// Applies all passes to \p P. Returns true if anything changed.
  bool run(Program &P, unsigned MaxIterations = 4);

  /// Per-pass metrics of the most recent run(), one entry per registered
  /// pass in registration order. Empty before the first run.
  const std::vector<PassMetrics> &metrics() const { return Metrics; }

private:
  std::vector<std::unique_ptr<FunctionPass>> Passes;
  std::vector<PassMetrics> Metrics;
};

} // namespace qcm

#endif // QCM_OPT_PASS_H
