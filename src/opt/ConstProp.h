//===- opt/ConstProp.h - Register constant propagation ----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward constant propagation over the language's variables. Variables
/// are registers — they are not addressable — so their contents survive
/// arbitrary calls in *every* model; the memory-model-sensitive part of the
/// paper's constant propagation examples is load forwarding across calls,
/// which lives in opt/OwnershipOpt.h. Folding of integer expressions relies
/// on the Section 3.5 guarantee that int variables hold machine integers.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_CONSTPROP_H
#define QCM_OPT_CONSTPROP_H

#include "opt/Pass.h"

namespace qcm {

/// The register constant propagation / folding pass. Also folds branches
/// and loops whose condition becomes a literal.
class ConstPropPass : public FunctionPass {
public:
  std::string name() const override { return "const-prop"; }
  bool runOnFunction(FunctionDecl &F, const Program &P) override;
};

} // namespace qcm

#endif // QCM_OPT_CONSTPROP_H
