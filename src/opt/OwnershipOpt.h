//===- opt/OwnershipOpt.h - Ownership-based memory optimization -*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-model-sensitive optimizations of the paper's examples: load
/// forwarding / constant propagation through memory, and dead store
/// elimination, both justified by *exclusive ownership* of logical blocks.
///
/// A pointer variable is "owned" from the point it receives a fresh
/// malloc() result until its value escapes — is passed to a call, stored
/// into memory, copied into another expression, or cast to an integer. The
/// content of an owned block:
///
/// * survives unknown function calls (no context can forge its logical
///   address — the core guarantee of the logical-family models, Section
///   2.2), enabling Figure 3's constant propagation across bar();
/// * can never alias loads/stores through other pointers (freshness-based
///   alias analysis, Section 7);
/// * makes trailing stores dead when the block never escapes (the DSE step
///   of the Section 5.1 running example).
///
/// Casting a pointer to an integer *ends* ownership: in the quasi-concrete
/// model the block becomes concrete and public (Sections 3.2 and 3.7), so
/// the pass conservatively stops all forwarding through it — which is
/// exactly why the Section 3.7 counterexamples are *not* transformed.
///
/// These rewrites are only correct under the logical-family models; the
/// refinement experiments demonstrate their invalidity under the concrete
/// model with guessing contexts.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_OWNERSHIPOPT_H
#define QCM_OPT_OWNERSHIPOPT_H

#include "opt/Pass.h"

namespace qcm {

/// Gates for the two transformations.
struct OwnershipOptions {
  /// Replace loads through owned pointers with the stored constant, and
  /// loads through public pointers with previously loaded values when no
  /// intervening write or call can interfere (freshness-based alias
  /// analysis).
  bool ForwardLoads = true;
  /// Remove stores through owned pointers that no later load can observe.
  bool EliminateDeadStores = true;
};

/// The ownership optimization pass. Control flow (if/while) is handled
/// conservatively: all knowledge is dropped at control-flow boundaries and
/// nested blocks are processed with fresh state.
class OwnershipOptPass : public FunctionPass {
public:
  explicit OwnershipOptPass(OwnershipOptions Options = {})
      : Options(Options) {}

  std::string name() const override { return "ownership-opt"; }
  bool runOnFunction(FunctionDecl &F, const Program &P) override;

private:
  OwnershipOptions Options;
};

} // namespace qcm

#endif // QCM_OPT_OWNERSHIPOPT_H
