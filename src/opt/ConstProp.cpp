//===- opt/ConstProp.cpp --------------------------------------------------===//

#include "opt/ConstProp.h"

#include "opt/Analysis.h"

#include <map>

using namespace qcm;

namespace {

using ConstEnv = std::map<std::string, Word>;

/// Substitutes known int variables and folds literal subtrees. Returns true
/// on change.
bool substituteAndFold(std::unique_ptr<Exp> &E, const ConstEnv &Env) {
  switch (E->ExpKind) {
  case Exp::Kind::IntLit:
  case Exp::Kind::Global:
    return false;
  case Exp::Kind::Var: {
    if (E->StaticType != Type::Int)
      return false;
    auto It = Env.find(E->Name);
    if (It == Env.end())
      return false;
    auto Lit = Exp::makeIntLit(It->second, E->Loc);
    Lit->StaticType = Type::Int;
    E = std::move(Lit);
    return true;
  }
  case Exp::Kind::Binary: {
    bool Changed = substituteAndFold(E->Lhs, Env);
    Changed |= substituteAndFold(E->Rhs, Env);
    if (E->Lhs->ExpKind == Exp::Kind::IntLit &&
        E->Rhs->ExpKind == Exp::Kind::IntLit) {
      Word A = E->Lhs->IntValue, B = E->Rhs->IntValue, R = 0;
      switch (E->Op) {
      case BinaryOp::Add:
        R = wrapAdd(A, B);
        break;
      case BinaryOp::Sub:
        R = wrapSub(A, B);
        break;
      case BinaryOp::Mul:
        R = wrapMul(A, B);
        break;
      case BinaryOp::And:
        R = A & B;
        break;
      case BinaryOp::Eq:
        R = A == B ? 1 : 0;
        break;
      }
      auto Lit = Exp::makeIntLit(R, E->Loc);
      Lit->StaticType = Type::Int;
      E = std::move(Lit);
      return true;
    }
    return Changed;
  }
  }
  return false;
}

/// Removes the entries whose value differs between \p A and \p B, leaving
/// the merge of two control-flow paths in \p A.
void intersectEnv(ConstEnv &A, const ConstEnv &B) {
  for (auto It = A.begin(); It != A.end();) {
    auto Found = B.find(It->first);
    if (Found == B.end() || Found->second != It->second)
      It = A.erase(It);
    else
      ++It;
  }
}

class Propagator {
public:
  bool Changed = false;

  void processInstr(std::unique_ptr<Instr> &Slot, ConstEnv &Env) {
    Instr &I = *Slot;
    switch (I.InstrKind) {
    case Instr::Kind::Seq:
      for (auto &S : I.Stmts)
        processInstr(S, Env);
      return;

    case Instr::Kind::Assign: {
      if (I.Rhs->Arg)
        Changed |= substituteAndFold(I.Rhs->Arg, Env);
      if (I.Var.empty())
        return;
      if (I.Rhs->RExpKind == RExp::Kind::Pure &&
          I.Rhs->Arg->ExpKind == Exp::Kind::IntLit)
        Env[I.Var] = I.Rhs->Arg->IntValue;
      else
        Env.erase(I.Var);
      return;
    }

    case Instr::Kind::Load:
      Changed |= substituteAndFold(I.Addr, Env);
      Env.erase(I.Var);
      return;

    case Instr::Kind::Store:
      Changed |= substituteAndFold(I.Addr, Env);
      Changed |= substituteAndFold(I.StoreVal, Env);
      return;

    case Instr::Kind::Call:
      // Variables are registers: calls cannot change them.
      for (auto &A : I.Args)
        Changed |= substituteAndFold(A, Env);
      return;

    case Instr::Kind::If: {
      Changed |= substituteAndFold(I.Cond, Env);
      if (I.Cond->ExpKind == Exp::Kind::IntLit) {
        // Fold the branch.
        std::unique_ptr<Instr> Taken =
            I.Cond->IntValue != 0
                ? std::move(I.Then)
                : (I.Else ? std::move(I.Else)
                          : Instr::makeSeq({}, I.Loc));
        Changed = true;
        Slot = std::move(Taken);
        processInstr(Slot, Env);
        return;
      }
      ConstEnv ThenEnv = Env;
      ConstEnv ElseEnv = Env;
      processInstr(I.Then, ThenEnv);
      if (I.Else)
        processInstr(I.Else, ElseEnv);
      intersectEnv(ThenEnv, ElseEnv);
      Env = std::move(ThenEnv);
      return;
    }

    case Instr::Kind::While: {
      // Kill everything the body may redefine, then analyze under that
      // weaker environment (sound for any number of iterations).
      std::set<std::string> Defs;
      collectInstrDefs(*I.Body, Defs);
      for (const std::string &D : Defs)
        Env.erase(D);
      Changed |= substituteAndFold(I.Cond, Env);
      if (I.Cond->ExpKind == Exp::Kind::IntLit && I.Cond->IntValue == 0) {
        Changed = true;
        Slot = Instr::makeSeq({}, I.Loc);
        return;
      }
      processInstr(I.Body, Env);
      for (const std::string &D : Defs)
        Env.erase(D);
      return;
    }
    }
  }
};

} // namespace

bool ConstPropPass::runOnFunction(FunctionDecl &F, const Program &) {
  if (!F.Body)
    return false;
  Propagator P;
  ConstEnv Env;
  // Locals start out known: int variables are initialized to 0.
  for (const VarDecl &L : F.Locals)
    if (L.Ty == Type::Int)
      Env[L.Name] = 0;
  // Wrap the body in a slot for uniform replacement.
  std::unique_ptr<Instr> Body = std::move(F.Body);
  P.processInstr(Body, Env);
  F.Body = std::move(Body);
  return P.Changed;
}
