//===- opt/Pass.cpp -------------------------------------------------------===//

#include "opt/Pass.h"

#include "support/Profiler.h"

using namespace qcm;

FunctionPass::~FunctionPass() = default;

namespace {

uint64_t countInstrTree(const Instr &I) {
  uint64_t N = I.InstrKind == Instr::Kind::Seq ? 0 : 1;
  if (I.Then)
    N += countInstrTree(*I.Then);
  if (I.Else)
    N += countInstrTree(*I.Else);
  if (I.Body)
    N += countInstrTree(*I.Body);
  for (const auto &S : I.Stmts)
    N += countInstrTree(*S);
  return N;
}

} // namespace

uint64_t qcm::countInstructions(const FunctionDecl &F) {
  return F.Body ? countInstrTree(*F.Body) : 0;
}

std::string PassMetrics::toString() const {
  std::string Name = PassName;
  if (Name.size() < 12)
    Name.resize(12, ' ');
  return Name + "  invocations=" + std::to_string(Invocations) +
         "  rewrites=" + std::to_string(Rewrites) +
         "  instrs=" + std::to_string(InstrsBefore) + "->" +
         std::to_string(InstrsAfter) + "  wall_us=" +
         std::to_string(static_cast<uint64_t>(WallSeconds * 1e6));
}

std::string PassMetrics::toJson() const {
  JsonObject O;
  O.field("pass", PassName);
  O.field("invocations", Invocations);
  O.field("rewrites", Rewrites);
  O.field("instrs_before", InstrsBefore);
  O.field("instrs_after", InstrsAfter);
  O.field("wall_us", static_cast<uint64_t>(WallSeconds * 1e6));
  return O.str();
}

void PassManager::add(std::unique_ptr<FunctionPass> Pass) {
  Passes.push_back(std::move(Pass));
}

bool PassManager::run(Program &P, unsigned MaxIterations) {
  Metrics.clear();
  Metrics.reserve(Passes.size());
  for (const auto &Pass : Passes) {
    PassMetrics M;
    M.PassName = Pass->name();
    Metrics.push_back(std::move(M));
  }

  bool EverChanged = false;
  for (unsigned Iter = 0; Iter < MaxIterations; ++Iter) {
    bool Changed = false;
    for (size_t Idx = 0; Idx < Passes.size(); ++Idx) {
      FunctionPass &Pass = *Passes[Idx];
      PassMetrics &M = Metrics[Idx];
      prof::Span Span(std::string("pass:") + Pass.name(), "opt");
      Span.arg("iteration", static_cast<uint64_t>(Iter));
      for (FunctionDecl &F : P.Functions) {
        if (F.isExtern())
          continue;
        uint64_t Before = countInstructions(F);
        Stopwatch Timer;
        bool FnChanged = Pass.runOnFunction(F, P);
        M.WallSeconds += Timer.seconds();
        ++M.Invocations;
        M.InstrsBefore += Before;
        M.InstrsAfter += countInstructions(F);
        if (FnChanged)
          ++M.Rewrites;
        Changed |= FnChanged;
      }
    }
    EverChanged |= Changed;
    if (!Changed)
      break;
  }
  return EverChanged;
}
