//===- opt/Pass.cpp -------------------------------------------------------===//

#include "opt/Pass.h"

#include "support/Profiler.h"

#include <algorithm>
#include <map>

using namespace qcm;

FunctionPass::~FunctionPass() = default;

namespace {

uint64_t countInstrTree(const Instr &I) {
  uint64_t N = I.InstrKind == Instr::Kind::Seq ? 0 : 1;
  if (I.Then)
    N += countInstrTree(*I.Then);
  if (I.Else)
    N += countInstrTree(*I.Else);
  if (I.Body)
    N += countInstrTree(*I.Body);
  for (const auto &S : I.Stmts)
    N += countInstrTree(*S);
  return N;
}

} // namespace

uint64_t qcm::countInstructions(const FunctionDecl &F) {
  return F.Body ? countInstrTree(*F.Body) : 0;
}

std::string PassMetrics::toString() const {
  std::string Name = PassName;
  if (Name.size() < 12)
    Name.resize(12, ' ');
  return Name + "  invocations=" + std::to_string(Invocations) +
         "  rewrites=" + std::to_string(Rewrites) +
         "  instrs=" + std::to_string(InstrsBefore) + "->" +
         std::to_string(InstrsAfter) + "  wall_us=" +
         std::to_string(static_cast<uint64_t>(WallSeconds * 1e6));
}

std::string PassMetrics::toJson() const {
  JsonObject O;
  O.field("pass", PassName);
  O.field("invocations", Invocations);
  O.field("rewrites", Rewrites);
  O.field("instrs_before", InstrsBefore);
  O.field("instrs_after", InstrsAfter);
  O.field("wall_us", static_cast<uint64_t>(WallSeconds * 1e6));
  return O.str();
}

std::string PassApplication::toString() const {
  return "pass '" + Pass + "' (element " + std::to_string(Element) +
         ", iteration " + std::to_string(Iteration) + ")";
}

unsigned PipelineResult::lastIterations() const {
  unsigned Max = 0;
  for (const PassApplication &App : Applications)
    Max = std::max(Max, App.Iteration + 1);
  return Max;
}

//===----------------------------------------------------------------------===//
// PassPipeline
//===----------------------------------------------------------------------===//

FunctionPass *PassPipeline::own(std::unique_ptr<FunctionPass> Pass) {
  Owned.push_back(std::move(Pass));
  return Owned.back().get();
}

PassPipeline::Element PassPipeline::leaf(FunctionPass *Pass,
                                         std::string Token) {
  Element E;
  E.Pass = Pass;
  E.Token = Token.empty() ? Pass->name() : std::move(Token);
  return E;
}

PassPipeline::Element PassPipeline::fix(std::vector<Element> Children,
                                        unsigned MaxIterations) {
  Element E;
  E.Children = std::move(Children);
  E.MaxIterations = MaxIterations;
  return E;
}

namespace {

/// One run's mutable state, threaded through the element tree.
struct PipelineRun {
  Program &P;
  const PassValidator &Validate;
  PipelineResult &Result;
  std::map<const PassPipeline::Element *, unsigned> LeafIndex;
  std::map<std::string, size_t> MetricsIndex;

  void number(const std::vector<PassPipeline::Element> &Elements,
              unsigned &Next) {
    for (const PassPipeline::Element &E : Elements) {
      if (E.Pass) {
        LeafIndex[&E] = Next++;
        std::string Token = E.Token.empty() ? E.Pass->name() : E.Token;
        if (!MetricsIndex.count(Token)) {
          MetricsIndex[Token] = Result.Metrics.size();
          PassMetrics M;
          M.PassName = Token;
          Result.Metrics.push_back(std::move(M));
        }
      } else {
        number(E.Children, Next);
      }
    }
  }

  /// Runs one element; returns whether it changed the program. Sets
  /// Result.Failed (and rolls back) on a validator rejection, which aborts
  /// all enclosing loops.
  bool runElement(const PassPipeline::Element &E, unsigned Iteration) {
    if (!E.Pass)
      return runGroup(E.Children, E.MaxIterations);

    const std::string Token = E.Token.empty() ? E.Pass->name() : E.Token;
    PassApplication App;
    App.Pass = Token;
    App.Element = LeafIndex[&E];
    App.Iteration = Iteration;

    // Snapshot only when someone can reject the application.
    std::optional<Program> Before;
    if (Validate)
      Before = P.clone();

    PassMetrics &M = Result.Metrics[MetricsIndex[Token]];
    prof::Span Span(std::string("pass:") + Token, "opt");
    Span.arg("iteration", static_cast<uint64_t>(Iteration));
    for (FunctionDecl &F : P.Functions) {
      if (F.isExtern())
        continue;
      uint64_t BeforeCount = countInstructions(F);
      Stopwatch Timer;
      bool FnChanged = E.Pass->runOnFunction(F, P);
      M.WallSeconds += Timer.seconds();
      ++M.Invocations;
      M.InstrsBefore += BeforeCount;
      M.InstrsAfter += countInstructions(F);
      if (FnChanged) {
        ++M.Rewrites;
        App.ChangedFunctions.push_back(F.Name);
      }
    }
    App.Changed = !App.ChangedFunctions.empty();

    if (App.Changed && Validate) {
      if (std::optional<std::string> Rejection = Validate(*Before, P, App)) {
        P = std::move(*Before);
        Result.Failed = App;
        Result.FailureDetail = std::move(*Rejection);
        Result.Applications.push_back(std::move(App));
        return false;
      }
    }
    bool Changed = App.Changed;
    Result.Applications.push_back(std::move(App));
    Result.Changed |= Changed;
    return Changed;
  }

  /// A fixpoint group: iterate the members until a full sweep changes
  /// nothing, bounded by MaxIterations.
  bool runGroup(const std::vector<PassPipeline::Element> &Elements,
                unsigned MaxIterations) {
    bool EverChanged = false;
    for (unsigned Iter = 0; Iter < MaxIterations; ++Iter) {
      bool Changed = false;
      for (const PassPipeline::Element &E : Elements) {
        Changed |= runElement(E, Iter);
        if (Result.Failed)
          return EverChanged;
      }
      EverChanged |= Changed;
      if (!Changed)
        return EverChanged;
    }
    // Still changing when the bound ran out.
    Result.HitIterationBound = true;
    return EverChanged;
  }
};

} // namespace

PipelineResult PassPipeline::run(Program &P, const PassValidator &Validate) {
  PipelineResult Result;
  PipelineRun Run{P, Validate, Result, {}, {}};
  unsigned Next = 0;
  Run.number(Elements, Next);
  for (const Element &E : Elements) {
    // Top-level elements run once each, in order; top-level leaves report
    // iteration 0.
    Run.runElement(E, 0);
    if (Result.Failed)
      break;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

void PassManager::add(std::unique_ptr<FunctionPass> Pass) {
  Passes.push_back(std::move(Pass));
}

bool PassManager::run(Program &P, unsigned MaxIterations) {
  PassPipeline Pipeline;
  std::vector<PassPipeline::Element> Members;
  for (const auto &Pass : Passes)
    Members.push_back(PassPipeline::leaf(Pass.get()));
  Pipeline.Elements.push_back(
      PassPipeline::fix(std::move(Members), MaxIterations));
  Last = Pipeline.run(P);
  return Last.Changed;
}
