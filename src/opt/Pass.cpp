//===- opt/Pass.cpp -------------------------------------------------------===//

#include "opt/Pass.h"

using namespace qcm;

FunctionPass::~FunctionPass() = default;

void PassManager::add(std::unique_ptr<FunctionPass> Pass) {
  Passes.push_back(std::move(Pass));
}

bool PassManager::run(Program &P, unsigned MaxIterations) {
  bool EverChanged = false;
  for (unsigned Iter = 0; Iter < MaxIterations; ++Iter) {
    bool Changed = false;
    for (auto &Pass : Passes)
      for (FunctionDecl &F : P.Functions)
        if (!F.isExtern())
          Changed |= Pass->runOnFunction(F, P);
    EverChanged |= Changed;
    if (!Changed)
      break;
  }
  return EverChanged;
}
