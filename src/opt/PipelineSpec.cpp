//===- opt/PipelineSpec.cpp -----------------------------------------------===//

#include "opt/PipelineSpec.h"

#include "memory/ModelRegistry.h"
#include "opt/ArithSimplify.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"
#include "opt/DeadStoreElim.h"
#include "opt/OwnershipOpt.h"
#include "opt/RedundantLoadElim.h"
#include "support/Rng.h"

#include <algorithm>
#include <cctype>

using namespace qcm;

//===----------------------------------------------------------------------===//
// PipelineSpec text form
//===----------------------------------------------------------------------===//

namespace {

void printElem(const PipelineSpec::Elem &E, std::string &Out) {
  if (E.ElemKind == PipelineSpec::Elem::Kind::Pass) {
    Out += E.Name;
    return;
  }
  Out += "fix";
  if (E.MaxIterations != 0)
    Out += ":" + std::to_string(E.MaxIterations);
  Out += "(";
  for (size_t I = 0; I < E.Children.size(); ++I) {
    if (I)
      Out += ",";
    printElem(E.Children[I], Out);
  }
  Out += ")";
}

/// Recursive-descent parser over the spec grammar.
struct SpecParser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit SpecParser(const std::string &Text) : Text(Text) {}

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool fail(const std::string &Message) {
    Error = Message + " at position " + std::to_string(Pos);
    return false;
  }

  static bool isNameChar(char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '-' || C == '_';
  }

  std::string parseName() {
    skipSpace();
    std::string Name;
    while (Pos < Text.size() && isNameChar(Text[Pos]))
      Name += Text[Pos++];
    return Name;
  }

  bool parseSeq(std::vector<PipelineSpec::Elem> &Out, bool Nested) {
    while (true) {
      PipelineSpec::Elem E;
      if (!parseElem(E))
        return false;
      Out.push_back(std::move(E));
      char C = peek();
      if (C == ',') {
        ++Pos;
        continue;
      }
      if (C == '\0')
        return Nested ? fail("unterminated 'fix(' group, expected ')'")
                      : true;
      if (C == ')')
        return Nested ? true : fail("unexpected ')'");
      return fail(std::string("expected ',' but found '") + C + "'");
    }
  }

  bool parseElem(PipelineSpec::Elem &E) {
    std::string Name = parseName();
    if (Name.empty())
      return fail("expected a pass name");
    if (Name == "fix" && (peek() == '(' || peek() == ':')) {
      E.ElemKind = PipelineSpec::Elem::Kind::Fix;
      if (peek() == ':') {
        ++Pos;
        std::string Digits = parseName();
        if (Digits.empty() ||
            !std::all_of(Digits.begin(), Digits.end(), [](char C) {
              return std::isdigit(static_cast<unsigned char>(C));
            }))
          return fail("expected an iteration count after 'fix:'");
        unsigned long Bound = std::stoul(Digits);
        if (Bound == 0)
          return fail("'fix:0' is not a pipeline");
        E.MaxIterations = static_cast<unsigned>(Bound);
      }
      if (peek() != '(')
        return fail("expected '(' after 'fix'");
      ++Pos;
      if (!parseSeq(E.Children, /*Nested=*/true))
        return false;
      // parseSeq stopped at ')' or reported the unterminated group.
      ++Pos;
      return true;
    }
    E.ElemKind = PipelineSpec::Elem::Kind::Pass;
    E.Name = std::move(Name);
    return true;
  }
};

} // namespace

std::string PipelineSpec::toString() const {
  std::string Out;
  for (size_t I = 0; I < Elems.size(); ++I) {
    if (I)
      Out += ",";
    printElem(Elems[I], Out);
  }
  return Out;
}

std::optional<PipelineSpec> PipelineSpec::parse(const std::string &Text,
                                                std::string &Error) {
  SpecParser Parser(Text);
  if (Parser.peek() == '\0') {
    Error = "empty pipeline spec";
    return std::nullopt;
  }
  PipelineSpec Spec;
  if (!Parser.parseSeq(Spec.Elems, /*Nested=*/false)) {
    Error = Parser.Error;
    return std::nullopt;
  }
  return Spec;
}

PipelineSpec PipelineSpec::defaultSpec() {
  std::string Error;
  std::optional<PipelineSpec> Spec =
      parse("fix(ownership,constprop,arith,dce)", Error);
  return *Spec;
}

PipelineSpec PipelineSpec::random(uint64_t Seed) {
  std::vector<std::string> Tokens;
  for (const PassInfo &Info : passRegistry())
    if (!Info.Hidden)
      Tokens.push_back(Info.Name);

  Rng R(Seed ^ 0x9e3779b97f4a7c15ull);
  auto PickToken = [&] { return Tokens[R.nextBelow(Tokens.size())]; };

  PipelineSpec Spec;
  unsigned Length = 1 + static_cast<unsigned>(R.nextBelow(5));
  for (unsigned I = 0; I < Length; ++I) {
    Elem E;
    if (R.nextBelow(4) == 0) {
      // A small fixpoint group with an explicit bound, so fuzzing also
      // exercises the fix:N syntax and the iteration-bound paths.
      E.ElemKind = Elem::Kind::Fix;
      E.MaxIterations = 2 + static_cast<unsigned>(R.nextBelow(3));
      unsigned Inner = 2 + static_cast<unsigned>(R.nextBelow(2));
      for (unsigned J = 0; J < Inner; ++J) {
        Elem Child;
        Child.Name = PickToken();
        E.Children.push_back(std::move(Child));
      }
    } else {
      E.Name = PickToken();
    }
    Spec.Elems.push_back(std::move(E));
  }
  return Spec;
}

//===----------------------------------------------------------------------===//
// The pass registry
//===----------------------------------------------------------------------===//

namespace {

/// The validator's canary: a dead-store-elimination "variant" that removes
/// the *last* store in each function's top-level sequence whether or not it
/// is dead — and claims validity under every model. Hidden from listings;
/// reachable only by naming `bug-dse` in a spec. Any store whose value is
/// later observed (tests use `*p = 42; r = *p; output(r);`) turns into a
/// counterexample the translation validator must produce.
class BuggyDeadStorePass : public FunctionPass {
public:
  std::string name() const override { return "bug-dse"; }

  bool runOnFunction(FunctionDecl &F, const Program &P) override {
    (void)P;
    if (!F.Body || F.Body->InstrKind != Instr::Kind::Seq)
      return false;
    auto &Stmts = F.Body->Stmts;
    for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It) {
      if ((*It)->InstrKind == Instr::Kind::Store) {
        Stmts.erase(std::next(It).base());
        return true;
      }
    }
    return false;
  }
};

/// Every registered model, straight from the model registry: a pass valid
/// everywhere (cast-preserving, allocation-preserving) is valid under any
/// model added later, two-phase included.
std::vector<ModelKind> allModels(const PassFactoryOptions &) {
  const auto &Kinds = allModelKinds();
  return std::vector<ModelKind>(Kinds.begin(), Kinds.end());
}

/// The models whose never-cast allocations keep no concrete footprint —
/// the registry's UncastAllocationsStayLogical flag. Ownership-based
/// claims (dead allocation/store elimination, load forwarding across
/// calls) hold exactly there; the two-phase model is excluded because its
/// phase transition concretizes even never-cast blocks, so removing a dead
/// allocation shifts every later placement observably.
std::vector<ModelKind> logicalFamily(const PassFactoryOptions &) {
  std::vector<ModelKind> Out;
  for (const ModelDescriptor &D : modelRegistry())
    if (D.UncastAllocationsStayLogical)
      Out.push_back(D.Kind);
  return Out;
}

std::vector<PassInfo> buildRegistry() {
  std::vector<PassInfo> R;

  R.push_back({"ownership",
               "ownership-based load forwarding and store elimination "
               "across calls (Figure 3)",
               false,
               [](const PassFactoryOptions &) {
                 return std::make_unique<OwnershipOptPass>();
               },
               logicalFamily});

  R.push_back({"constprop", "constant propagation and folding", false,
               [](const PassFactoryOptions &) {
                 return std::make_unique<ConstPropPass>();
               },
               allModels});

  R.push_back({"arith", "arithmetic identity simplification", false,
               [](const PassFactoryOptions &) {
                 return std::make_unique<ArithSimplifyPass>();
               },
               allModels});

  R.push_back({"dce",
               "dead code elimination (with --dae also removes dead "
               "allocations, narrowing validity to the logical family)",
               false,
               [](const PassFactoryOptions &O) {
                 DceOptions D;
                 D.RemoveDeadAllocs = O.Dae;
                 return std::make_unique<DeadCodeElimPass>(D);
               },
               [](const PassFactoryOptions &O) {
                 return O.Dae ? logicalFamily(O) : allModels(O);
               }});

  R.push_back({"dae",
               "dead code elimination including dead allocations "
               "(Section 1; unsound under the concrete model)",
               false,
               [](const PassFactoryOptions &) {
                 DceOptions D;
                 D.RemoveDeadAllocs = true;
                 return std::make_unique<DeadCodeElimPass>(D);
               },
               logicalFamily});

  R.push_back({"dse",
               "liveness-driven dead store elimination, including "
               "trailing stores to owned blocks",
               false,
               [](const PassFactoryOptions &) {
                 return std::make_unique<DeadStoreElimPass>();
               },
               logicalFamily});

  R.push_back({"dse-local",
               "dead store elimination restricted to shadowed stores "
               "(valid under every model)",
               false,
               [](const PassFactoryOptions &) {
                 DseOptions D;
                 D.OwnedBlocks = false;
                 return std::make_unique<DeadStoreElimPass>(D);
               },
               allModels});

  R.push_back({"rle",
               "redundant load elimination within call-free regions "
               "(valid under every model)",
               false,
               [](const PassFactoryOptions &) {
                 return std::make_unique<RedundantLoadElimPass>();
               },
               allModels});

  R.push_back({"rle-own",
               "redundant load elimination keeping owned-block facts "
               "across calls (Figure 3)",
               false,
               [](const PassFactoryOptions &) {
                 RleOptions O;
                 O.AcrossCalls = true;
                 return std::make_unique<RedundantLoadElimPass>(O);
               },
               logicalFamily});

  R.push_back({"bug-dse",
               "deliberately broken dead store elimination (validator "
               "canary; drops a live store)",
               true,
               [](const PassFactoryOptions &) {
                 return std::make_unique<BuggyDeadStorePass>();
               },
               allModels});

  return R;
}

size_t editDistance(const std::string &A, const std::string &B) {
  std::vector<size_t> Prev(B.size() + 1), Cur(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Prev[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    Cur[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Sub = Prev[J - 1] + (A[I - 1] == B[J - 1] ? 0 : 1);
      Cur[J] = std::min({Prev[J] + 1, Cur[J - 1] + 1, Sub});
    }
    std::swap(Prev, Cur);
  }
  return Prev[B.size()];
}

} // namespace

const std::vector<PassInfo> &qcm::passRegistry() {
  static const std::vector<PassInfo> Registry = buildRegistry();
  return Registry;
}

const PassInfo *qcm::findPass(const std::string &Name) {
  for (const PassInfo &Info : passRegistry())
    if (Info.Name == Name)
      return &Info;
  return nullptr;
}

std::vector<std::string> qcm::suggestPassNames(const std::string &Name) {
  std::vector<std::pair<size_t, std::string>> Scored;
  for (const PassInfo &Info : passRegistry()) {
    if (Info.Hidden)
      continue;
    size_t D = editDistance(Name, Info.Name);
    if (D <= 2)
      Scored.emplace_back(D, Info.Name);
  }
  std::stable_sort(Scored.begin(), Scored.end(),
                   [](const auto &A, const auto &B) { return A.first < B.first; });
  std::vector<std::string> Out;
  for (auto &[D, N] : Scored)
    Out.push_back(N);
  return Out;
}

bool qcm::passClaimsValidity(const std::string &Name, ModelKind Model,
                             const PassFactoryOptions &Opts) {
  const PassInfo *Info = findPass(Name);
  if (!Info)
    return false;
  std::vector<ModelKind> Models = Info->ValidUnder(Opts);
  return std::find(Models.begin(), Models.end(), Model) != Models.end();
}

namespace {

bool buildElements(const std::vector<PipelineSpec::Elem> &Elems,
                   PassPipeline &Pipeline,
                   std::vector<PassPipeline::Element> &Out,
                   const PassFactoryOptions &Opts, std::string &Error,
                   unsigned DefaultFixIterations) {
  for (const PipelineSpec::Elem &E : Elems) {
    if (E.ElemKind == PipelineSpec::Elem::Kind::Fix) {
      std::vector<PassPipeline::Element> Children;
      if (!buildElements(E.Children, Pipeline, Children, Opts, Error,
                         DefaultFixIterations))
        return false;
      Out.push_back(PassPipeline::fix(
          std::move(Children),
          E.MaxIterations ? E.MaxIterations : DefaultFixIterations));
      continue;
    }
    const PassInfo *Info = findPass(E.Name);
    if (!Info) {
      Error = "unknown pass '" + E.Name + "'";
      std::vector<std::string> Suggestions = suggestPassNames(E.Name);
      if (!Suggestions.empty()) {
        Error += "; did you mean ";
        for (size_t I = 0; I < Suggestions.size(); ++I) {
          if (I)
            Error += I + 1 == Suggestions.size() ? " or " : ", ";
          Error += "'" + Suggestions[I] + "'";
        }
        Error += "?";
      }
      Error += " (try --list-passes)";
      return false;
    }
    FunctionPass *Pass = Pipeline.own(Info->Make(Opts));
    Out.push_back(PassPipeline::leaf(Pass, Info->Name));
  }
  return true;
}

} // namespace

std::optional<PassPipeline>
qcm::buildPipeline(const PipelineSpec &Spec, const PassFactoryOptions &Opts,
                   std::string &Error, unsigned DefaultFixIterations) {
  std::optional<PassPipeline> Pipeline;
  Pipeline.emplace();
  std::vector<PassPipeline::Element> Elements;
  if (!buildElements(Spec.Elems, *Pipeline, Elements, Opts, Error,
                     DefaultFixIterations))
    return std::nullopt;
  Pipeline->Elements = std::move(Elements);
  return Pipeline;
}
