//===- opt/OwnershipOpt.cpp -----------------------------------------------===//

#include "opt/OwnershipOpt.h"

#include "lang/PrettyPrint.h"
#include "opt/Analysis.h"

#include <map>
#include <optional>
#include <set>

using namespace qcm;

namespace {

/// A simple address pattern: pointer variable plus constant word offset.
struct SimpleAddr {
  std::string PtrVar;
  Word Offset = 0;
};

std::optional<SimpleAddr> matchSimpleAddr(const Exp &E) {
  if (E.ExpKind == Exp::Kind::Var && E.StaticType == Type::Ptr)
    return SimpleAddr{E.Name, 0};
  if (E.ExpKind == Exp::Kind::Binary && E.StaticType == Type::Ptr) {
    const Exp &L = *E.Lhs, &R = *E.Rhs;
    if (E.Op == BinaryOp::Add && L.ExpKind == Exp::Kind::Var &&
        L.StaticType == Type::Ptr && R.ExpKind == Exp::Kind::IntLit)
      return SimpleAddr{L.Name, R.IntValue};
    if (E.Op == BinaryOp::Add && R.ExpKind == Exp::Kind::Var &&
        R.StaticType == Type::Ptr && L.ExpKind == Exp::Kind::IntLit)
      return SimpleAddr{R.Name, L.IntValue};
    if (E.Op == BinaryOp::Sub && L.ExpKind == Exp::Kind::Var &&
        L.StaticType == Type::Ptr && R.ExpKind == Exp::Kind::IntLit)
      return SimpleAddr{L.Name, wrapSub(0, R.IntValue)};
  }
  return std::nullopt;
}

/// Dataflow state for the straight-line walk.
struct State {
  struct OwnedFact {
    /// Offsets absent from Known read as 0 (fresh blocks are
    /// zero-initialized).
    std::map<Word, std::optional<Word>> Known;
    /// Dead-store candidates: offset -> the store instruction.
    std::map<Word, Instr *> PendingStores;
  };

  /// Owned (fresh, unescaped) pointer variables.
  std::map<std::string, OwnedFact> Owned;
  /// Forwardable public loads: printed address -> variable holding the
  /// value.
  std::map<std::string, std::string> PublicKnown;
};

class Optimizer {
public:
  Optimizer(FunctionDecl &F, const OwnershipOptions &Options)
      : F(F), Options(Options) {}

  bool Changed = false;

  void run() {
    State S;
    processSeq(*F.Body, S);
    // Function end: blocks still owned here can never be observed again.
    for (auto &[Var, Fact] : S.Owned)
      markPendingDead(Fact);
    sweepDeleted(*F.Body);
  }

private:
  //===-- State transitions ----------------------------------------------===

  void markPendingDead(State::OwnedFact &Fact) {
    for (auto &[Off, Store] : Fact.PendingStores) {
      ToDelete.insert(Store);
      Changed = true;
    }
    Fact.PendingStores.clear();
  }

  /// The pointer escaped: its block is publicly reachable from here on.
  void escapeVar(State &S, const std::string &Var) {
    auto It = S.Owned.find(Var);
    if (It == S.Owned.end())
      return;
    // Pending stores become observable; keep them.
    S.Owned.erase(It);
  }

  /// Every pointer-typed variable appearing in \p E escapes.
  void escapeUses(State &S, const Exp &E) {
    std::set<std::string> Uses;
    collectExpUses(E, Uses);
    for (const std::string &U : Uses)
      escapeVar(S, U);
  }

  /// Variable \p Var was redefined: forwardable loads held in it, and
  /// addresses formed from it, are stale. If it owned a block, the block
  /// becomes unreachable — its pending stores are dead.
  void killVar(State &S, const std::string &Var) {
    auto OwnedIt = S.Owned.find(Var);
    if (OwnedIt != S.Owned.end()) {
      markPendingDead(OwnedIt->second);
      S.Owned.erase(OwnedIt);
    }
    for (auto It = S.PublicKnown.begin(); It != S.PublicKnown.end();) {
      bool Stale = It->second == Var ||
                   It->first.find(Var) != std::string::npos;
      It = Stale ? S.PublicKnown.erase(It) : std::next(It);
    }
  }

  /// A write through public memory, or an unknown call: all public
  /// knowledge dies. Owned blocks are unaffected — nothing aliases them
  /// (freshness) and no context can forge their addresses (ownership).
  void killPublic(State &S) { S.PublicKnown.clear(); }

  void clearAll(State &S) {
    // Control-flow boundary: pending stores may be observed on other paths.
    S.Owned.clear();
    S.PublicKnown.clear();
  }

  //===-- Instruction processing -----------------------------------------===

  void processSeq(Instr &Seq, State &S) {
    for (auto &Child : Seq.Stmts)
      processInstr(*Child, S);
  }

  void processInstr(Instr &I, State &S) {
    switch (I.InstrKind) {
    case Instr::Kind::Seq:
      processSeq(I, S);
      return;

    case Instr::Kind::If: {
      escapeUses(S, *I.Cond);
      clearAll(S);
      State Fresh1;
      processInstr(*I.Then, Fresh1);
      if (I.Else) {
        State Fresh2;
        processInstr(*I.Else, Fresh2);
      }
      clearAll(S);
      return;
    }

    case Instr::Kind::While: {
      escapeUses(S, *I.Cond);
      clearAll(S);
      State Fresh;
      processInstr(*I.Body, Fresh);
      clearAll(S);
      return;
    }

    case Instr::Kind::Call:
      for (const auto &A : I.Args)
        escapeUses(S, *A);
      killPublic(S);
      return;

    case Instr::Kind::Load:
      processLoad(I, S);
      return;

    case Instr::Kind::Store:
      processStore(I, S);
      return;

    case Instr::Kind::Assign:
      processAssign(I, S);
      return;
    }
  }

  void processLoad(Instr &I, State &S) {
    std::optional<SimpleAddr> Addr = matchSimpleAddr(*I.Addr);
    if (!Addr) {
      escapeUses(S, *I.Addr);
      killVar(S, I.Var);
      return;
    }
    auto OwnedIt = S.Owned.find(Addr->PtrVar);
    if (OwnedIt != S.Owned.end()) {
      State::OwnedFact &Fact = OwnedIt->second;
      auto KnownIt = Fact.Known.find(Addr->Offset);
      std::optional<Word> Known =
          KnownIt == Fact.Known.end() ? std::optional<Word>(0) // fresh => 0
                                      : KnownIt->second;
      if (Options.ForwardLoads && Known &&
          varType(I.Var) == Type::Int) {
        // Replace the load with the known constant; the forwarded-from
        // store may now be dead and is left pending.
        rewriteToConstAssign(I, *Known);
        killVar(S, I.Var);
        return;
      }
      // The load observes any pending store at this offset.
      Fact.PendingStores.erase(Addr->Offset);
      killVar(S, I.Var);
      return;
    }
    // Public load: forward from an earlier identical load if possible.
    std::string Key = printExp(*I.Addr);
    auto KnownIt = S.PublicKnown.find(Key);
    if (Options.ForwardLoads && KnownIt != S.PublicKnown.end() &&
        KnownIt->second != I.Var &&
        varType(KnownIt->second) == varType(I.Var)) {
      std::string From = KnownIt->second;
      rewriteToVarAssign(I, From);
      killVar(S, I.Var);
      return;
    }
    std::string Var = I.Var;
    killVar(S, Var);
    S.PublicKnown[Key] = Var;
  }

  void processStore(Instr &I, State &S) {
    escapeUses(S, *I.StoreVal); // Storing a pointer publishes it.
    std::optional<SimpleAddr> Addr = matchSimpleAddr(*I.Addr);
    if (!Addr) {
      escapeUses(S, *I.Addr);
      killPublic(S);
      return;
    }
    auto OwnedIt = S.Owned.find(Addr->PtrVar);
    if (OwnedIt != S.Owned.end()) {
      State::OwnedFact &Fact = OwnedIt->second;
      if (Options.EliminateDeadStores) {
        auto PendingIt = Fact.PendingStores.find(Addr->Offset);
        if (PendingIt != Fact.PendingStores.end()) {
          // Overwritten before any load: the earlier store is dead.
          ToDelete.insert(PendingIt->second);
          Changed = true;
        }
        Fact.PendingStores[Addr->Offset] = &I;
      }
      if (I.StoreVal->ExpKind == Exp::Kind::IntLit)
        Fact.Known[Addr->Offset] = I.StoreVal->IntValue;
      else
        Fact.Known[Addr->Offset] = std::nullopt;
      return;
    }
    // A store through public memory may alias any public address.
    killPublic(S);
  }

  void processAssign(Instr &I, State &S) {
    RExp &R = *I.Rhs;
    switch (R.RExpKind) {
    case RExp::Kind::Pure:
      escapeUses(S, *R.Arg);
      if (!I.Var.empty())
        killVar(S, I.Var);
      return;
    case RExp::Kind::Malloc: {
      escapeUses(S, *R.Arg);
      killVar(S, I.Var);
      S.Owned.emplace(I.Var, State::OwnedFact{});
      return;
    }
    case RExp::Kind::Free: {
      // free(p) of an owned block: the contents become unobservable, so
      // pending stores are dead.
      if (R.Arg->ExpKind == Exp::Kind::Var) {
        auto OwnedIt = S.Owned.find(R.Arg->Name);
        if (OwnedIt != S.Owned.end()) {
          markPendingDead(OwnedIt->second);
          S.Owned.erase(OwnedIt);
        }
        // Addresses formed from this pointer are dangling now.
        std::string Var = R.Arg->Name;
        for (auto It = S.PublicKnown.begin(); It != S.PublicKnown.end();) {
          bool Stale = It->first.find(Var) != std::string::npos;
          It = Stale ? S.PublicKnown.erase(It) : std::next(It);
        }
        return;
      }
      escapeUses(S, *R.Arg);
      return;
    }
    case RExp::Kind::Cast:
      // (int) p publishes p's block: in the quasi-concrete model the block
      // is realized and its address may circulate as an integer
      // (Section 3.2). (ptr) a creates an unknown pointer.
      escapeUses(S, *R.Arg);
      if (!I.Var.empty())
        killVar(S, I.Var);
      return;
    case RExp::Kind::Input:
      if (!I.Var.empty())
        killVar(S, I.Var);
      return;
    case RExp::Kind::Output:
      escapeUses(S, *R.Arg);
      return;
    }
  }

  //===-- Rewriting -------------------------------------------------------===

  Type varType(const std::string &Name) const {
    const VarDecl *D = F.findVariable(Name);
    return D ? D->Ty : Type::Int;
  }

  void rewriteToConstAssign(Instr &I, Word V) {
    auto Lit = Exp::makeIntLit(V, I.Loc);
    Lit->StaticType = Type::Int;
    I.InstrKind = Instr::Kind::Assign;
    I.Rhs = RExp::makePure(std::move(Lit));
    I.Addr.reset();
    Changed = true;
  }

  void rewriteToVarAssign(Instr &I, const std::string &From) {
    auto Ref = Exp::makeVar(From, I.Loc);
    Ref->StaticType = varType(From);
    I.InstrKind = Instr::Kind::Assign;
    I.Rhs = RExp::makePure(std::move(Ref));
    I.Addr.reset();
    Changed = true;
  }

  void sweepDeleted(Instr &I) {
    if (I.InstrKind == Instr::Kind::Seq) {
      for (auto It = I.Stmts.begin(); It != I.Stmts.end();) {
        if (ToDelete.count(It->get())) {
          It = I.Stmts.erase(It);
        } else {
          sweepDeleted(**It);
          ++It;
        }
      }
      return;
    }
    if (I.Then)
      sweepDeleted(*I.Then);
    if (I.Else)
      sweepDeleted(*I.Else);
    if (I.Body)
      sweepDeleted(*I.Body);
  }

  FunctionDecl &F;
  const OwnershipOptions &Options;
  std::set<const Instr *> ToDelete;
};

} // namespace

bool OwnershipOptPass::runOnFunction(FunctionDecl &F, const Program &) {
  if (!F.Body)
    return false;
  Optimizer Opt(F, Options);
  Opt.run();
  return Opt.Changed;
}
