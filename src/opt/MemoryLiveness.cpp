//===- opt/MemoryLiveness.cpp ---------------------------------------------===//

#include "opt/MemoryLiveness.h"

#include "opt/Analysis.h"

using namespace qcm;

std::string AddrKey::toString() const {
  std::string Text =
      (BaseKind == Base::Global ? "global " : "") + Name;
  if (WholeBase)
    return Text + "[*]";
  return Text + "[" + std::to_string(static_cast<uint64_t>(Offset)) + "]";
}

std::optional<AddrKey> qcm::addrKeyFor(const Exp &Addr) {
  auto BaseOf = [](const Exp &E) -> std::optional<AddrKey> {
    if (E.ExpKind == Exp::Kind::Var)
      return AddrKey{AddrKey::Base::Var, E.Name, 0, false};
    if (E.ExpKind == Exp::Kind::Global)
      return AddrKey{AddrKey::Base::Global, E.Name, 0, false};
    return std::nullopt;
  };
  if (auto K = BaseOf(Addr))
    return K;
  if (Addr.ExpKind != Exp::Kind::Binary)
    return std::nullopt;
  const Exp &L = *Addr.Lhs;
  const Exp &R = *Addr.Rhs;
  if (Addr.Op == BinaryOp::Add) {
    if (auto K = BaseOf(L); K && R.ExpKind == Exp::Kind::IntLit) {
      K->Offset = R.IntValue;
      return K;
    }
    if (auto K = BaseOf(R); K && L.ExpKind == Exp::Kind::IntLit) {
      K->Offset = L.IntValue;
      return K;
    }
  }
  if (Addr.Op == BinaryOp::Sub) {
    if (auto K = BaseOf(L); K && R.ExpKind == Exp::Kind::IntLit) {
      K->Offset = static_cast<Word>(0) - R.IntValue;
      return K;
    }
  }
  return std::nullopt;
}

bool qcm::coversLocation(const AddrKey &A, const AddrKey &B) {
  if (A.BaseKind != B.BaseKind || A.Name != B.Name)
    return false;
  return A.WholeBase || (!B.WholeBase && A.Offset == B.Offset);
}

bool qcm::mayAlias(const AddrKey &A, const AddrKey &B,
                   const std::set<std::string> &OwnedBases) {
  if (A.BaseKind == B.BaseKind && A.Name == B.Name)
    return A.WholeBase || B.WholeBase || A.Offset == B.Offset;
  // Pointer arithmetic never crosses block boundaries: access through a
  // displaced pointer to another block faults, it does not alias it. So
  // two *distinct* global blocks never alias.
  if (A.BaseKind == AddrKey::Base::Global &&
      B.BaseKind == AddrKey::Base::Global)
    return false;
  // An owned base holds a fresh block nothing else can point to.
  auto Owned = [&OwnedBases](const AddrKey &K) {
    return K.BaseKind == AddrKey::Base::Var && OwnedBases.count(K.Name) != 0;
  };
  if (Owned(A) || Owned(B))
    return false;
  return true;
}

namespace {

/// Accumulates the ownership evidence over one function.
struct OwnershipScan {
  std::set<std::string> MallocAssigned;
  std::set<std::string> OtherAssigned;
  std::set<std::string> Disqualified;

  /// Every variable in \p E escapes (used outside an address-base
  /// position).
  void escapeAll(const Exp &E) { collectExpUses(E, Disqualified); }

  /// An address operand: a recognized key shape uses only its base, and
  /// only as a base; anything else escapes every variable in it.
  void addressUse(const Exp &Addr) {
    if (!addrKeyFor(Addr))
      escapeAll(Addr);
  }

  void scan(const Instr &I) {
    switch (I.InstrKind) {
    case Instr::Kind::Seq:
      for (const auto &S : I.Stmts)
        scan(*S);
      return;
    case Instr::Kind::Assign:
      if (!I.Var.empty()) {
        if (I.Rhs->RExpKind == RExp::Kind::Malloc)
          MallocAssigned.insert(I.Var);
        else
          OtherAssigned.insert(I.Var);
      }
      // Every RHS operand (malloc size, free/cast/output argument, pure
      // expression) is a non-address use.
      if (I.Rhs->Arg)
        escapeAll(*I.Rhs->Arg);
      return;
    case Instr::Kind::Load:
      OtherAssigned.insert(I.Var);
      addressUse(*I.Addr);
      return;
    case Instr::Kind::Store:
      addressUse(*I.Addr);
      escapeAll(*I.StoreVal);
      return;
    case Instr::Kind::Call:
      for (const auto &A : I.Args)
        escapeAll(*A);
      return;
    case Instr::Kind::If:
      escapeAll(*I.Cond);
      scan(*I.Then);
      if (I.Else)
        scan(*I.Else);
      return;
    case Instr::Kind::While:
      escapeAll(*I.Cond);
      scan(*I.Body);
      return;
    }
  }
};

} // namespace

std::set<std::string> qcm::ownedMallocPointers(const FunctionDecl &F) {
  std::set<std::string> Owned;
  if (!F.Body)
    return Owned;
  OwnershipScan Scan;
  Scan.scan(*F.Body);
  for (const std::string &V : Scan.MallocAssigned) {
    if (Scan.OtherAssigned.count(V) || Scan.Disqualified.count(V))
      continue;
    bool IsParam = false;
    for (const VarDecl &P : F.Params)
      IsParam |= P.Name == V;
    if (!IsParam)
      Owned.insert(V);
  }
  return Owned;
}
