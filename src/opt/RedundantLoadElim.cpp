//===- opt/RedundantLoadElim.cpp ------------------------------------------===//

#include "opt/RedundantLoadElim.h"

#include "opt/MemoryLiveness.h"

#include <algorithm>

using namespace qcm;

namespace {

/// One availability fact: the location Key currently holds the value of a
/// register, a constant, or a global-block address.
struct Fact {
  enum class Value { Var, Const, GlobalAddr };

  AddrKey Key;
  Value ValKind = Value::Var;
  std::string Name; // Var, GlobalAddr
  Word Literal = 0; // Const
  Type Ty = Type::Int;

  friend bool operator==(const Fact &A, const Fact &B) {
    return A.Key == B.Key && A.ValKind == B.ValKind && A.Name == B.Name &&
           A.Literal == B.Literal && A.Ty == B.Ty;
  }
};

using FactSet = std::vector<Fact>;

class LoadEliminator {
public:
  LoadEliminator(const FunctionDecl &F, const RleOptions &Options,
                 std::set<std::string> Owned)
      : F(F), Options(Options), Owned(std::move(Owned)) {}

  bool Changed = false;

  void processInstr(Instr &I, FactSet &Facts) {
    switch (I.InstrKind) {
    case Instr::Kind::Seq:
      for (auto &S : I.Stmts)
        processInstr(*S, Facts);
      return;

    case Instr::Kind::Load: {
      std::optional<AddrKey> Key = addrKeyFor(*I.Addr);
      const VarDecl *Dst = F.findVariable(I.Var);
      if (Key && Dst) {
        for (const Fact &Fa : Facts) {
          if (!(Fa.Key == *Key) || !typeMatches(Fa, Dst->Ty))
            continue;
          rewriteLoad(I, Fa);
          // The destination now holds the same value it already did per
          // the fact (or a copy of another register): facts mentioning it
          // stay valid only for the self-copy case.
          if (!(Fa.ValKind == Fact::Value::Var && Fa.Name == I.Var))
            killUsing(Facts, I.Var);
          return;
        }
      }
      // A real load: it defines Var, and (when the location is
      // recognized) establishes that the location holds Var.
      killUsing(Facts, I.Var);
      if (Key && Dst && Key->Name != I.Var)
        Facts.push_back(Fact{*Key, Fact::Value::Var, I.Var, 0, Dst->Ty});
      return;
    }

    case Instr::Kind::Store: {
      std::optional<AddrKey> Key = addrKeyFor(*I.Addr);
      killAliasing(Facts, Key);
      if (Key) {
        if (std::optional<Fact> Fa = factForValue(*Key, *I.StoreVal))
          Facts.push_back(*Fa);
      }
      return;
    }

    case Instr::Kind::Assign: {
      if (I.Rhs->RExpKind == RExp::Kind::Free) {
        // Conservatively forget the freed block (forwarding a load whose
        // source-side execution faults would still be sound — the fault
        // admits everything — but there is nothing to gain).
        std::optional<AddrKey> Key = addrKeyFor(*I.Rhs->Arg);
        if (Key) {
          Key->WholeBase = true;
          Key->Offset = 0;
        }
        killAliasing(Facts, Key);
      }
      if (!I.Var.empty())
        killUsing(Facts, I.Var);
      return;
    }

    case Instr::Kind::Call:
      if (Options.AcrossCalls) {
        // No callee or context can reach an owned block (its logical
        // address never escaped), and registers are per-frame, so facts
        // about owned locations survive — Figure 3's forwarding across
        // bar(). Everything else may be overwritten.
        Facts.erase(std::remove_if(Facts.begin(), Facts.end(),
                                   [this](const Fact &Fa) {
                                     return Fa.Key.BaseKind !=
                                                AddrKey::Base::Var ||
                                            !Owned.count(Fa.Key.Name);
                                   }),
                    Facts.end());
      } else {
        Facts.clear();
      }
      return;

    case Instr::Kind::If: {
      FactSet ThenFacts = Facts;
      FactSet ElseFacts = Facts;
      processInstr(*I.Then, ThenFacts);
      if (I.Else)
        processInstr(*I.Else, ElseFacts);
      Facts = intersect(ThenFacts, ElseFacts);
      return;
    }

    case Instr::Kind::While: {
      // The body is analyzed from an empty fact set (the back edge may
      // bring any memory state), and contributes nothing after the loop
      // (it may run zero times, or clobber what the preheader knew).
      FactSet BodyFacts;
      processInstr(*I.Body, BodyFacts);
      Facts.clear();
      return;
    }
    }
  }

private:
  const FunctionDecl &F;
  const RleOptions &Options;
  const std::set<std::string> Owned;

  bool typeMatches(const Fact &Fa, Type DstTy) const {
    switch (Fa.ValKind) {
    case Fact::Value::Var:
      return Fa.Ty == DstTy;
    case Fact::Value::Const:
      return DstTy == Type::Int;
    case Fact::Value::GlobalAddr:
      return DstTy == Type::Ptr;
    }
    return false;
  }

  void rewriteLoad(Instr &I, const Fact &Fa) {
    std::unique_ptr<Exp> Value;
    switch (Fa.ValKind) {
    case Fact::Value::Var:
      Value = Exp::makeVar(Fa.Name, I.Loc);
      break;
    case Fact::Value::Const:
      Value = Exp::makeIntLit(Fa.Literal, I.Loc);
      break;
    case Fact::Value::GlobalAddr:
      Value = Exp::makeGlobal(Fa.Name, I.Loc);
      break;
    }
    I.InstrKind = Instr::Kind::Assign;
    I.Rhs = RExp::makePure(std::move(Value));
    I.Addr.reset();
    Changed = true;
  }

  std::optional<Fact> factForValue(const AddrKey &Key, const Exp &Val) const {
    // The fact's key must not be invalidated by future redefinitions of
    // the value register; that is handled in killUsing, so any register,
    // literal, or global works here.
    if (Val.ExpKind == Exp::Kind::IntLit)
      return Fact{Key, Fact::Value::Const, "", Val.IntValue, Type::Int};
    if (Val.ExpKind == Exp::Kind::Global)
      return Fact{Key, Fact::Value::GlobalAddr, Val.Name, 0, Type::Ptr};
    if (Val.ExpKind == Exp::Kind::Var) {
      if (const VarDecl *D = F.findVariable(Val.Name))
        return Fact{Key, Fact::Value::Var, Val.Name, 0, D->Ty};
    }
    return std::nullopt;
  }

  /// A (re)definition of \p Var invalidates facts whose key or value
  /// mentions it.
  static void killUsing(FactSet &Facts, const std::string &Var) {
    Facts.erase(std::remove_if(Facts.begin(), Facts.end(),
                               [&Var](const Fact &Fa) {
                                 bool KeyUses =
                                     Fa.Key.BaseKind == AddrKey::Base::Var &&
                                     Fa.Key.Name == Var;
                                 bool ValUses =
                                     Fa.ValKind == Fact::Value::Var &&
                                     Fa.Name == Var;
                                 return KeyUses || ValUses;
                               }),
                Facts.end());
  }

  /// A write to \p Key (or to an unknown location) invalidates every fact
  /// it may alias. An unknown pointer can never reach an owned block.
  void killAliasing(FactSet &Facts, const std::optional<AddrKey> &Key) {
    Facts.erase(std::remove_if(Facts.begin(), Facts.end(),
                               [&](const Fact &Fa) {
                                 if (Key)
                                   return mayAlias(Fa.Key, *Key, Owned);
                                 return Fa.Key.BaseKind !=
                                            AddrKey::Base::Var ||
                                        !Owned.count(Fa.Key.Name);
                               }),
                Facts.end());
  }

  static FactSet intersect(const FactSet &A, const FactSet &B) {
    FactSet Out;
    for (const Fact &Fa : A)
      if (std::find(B.begin(), B.end(), Fa) != B.end())
        Out.push_back(Fa);
    return Out;
  }
};

} // namespace

bool RedundantLoadElimPass::runOnFunction(FunctionDecl &F, const Program &P) {
  (void)P;
  if (!F.Body)
    return false;
  LoadEliminator E(F, Options, ownedMallocPointers(F));
  FactSet Facts;
  E.processInstr(*F.Body, Facts);
  return E.Changed;
}
