//===- opt/Lowering.cpp ---------------------------------------------------===//

#include "opt/Lowering.h"

#include "opt/DeadCodeElim.h"

using namespace qcm;

Program qcm::identityCompile(const Program &P) { return P.clone(); }

Program qcm::lowerToConcrete(const Program &P, LoweringOptions Options) {
  Program Lowered = P.clone();
  DceOptions Dce;
  // Dead casts typically keep a chain of dead integer arithmetic alive
  // (Figure 5's r = a * 123), so pure-assign removal — sound in every
  // model — runs together with the Section 3.6 cast/alloc removals that
  // only the concrete target justifies. Call removal stays off: lowering
  // must not change the call structure.
  Dce.RemovePureAssigns = true;
  Dce.RemoveDeadLoads = false;
  Dce.RemoveReadOnlyCalls = false;
  Dce.RemoveDeadCasts = Options.EliminateDeadCasts;
  Dce.RemoveDeadAllocs = Options.EliminateDeadAllocs;
  PassManager PM;
  PM.add(std::make_unique<DeadCodeElimPass>(Dce));
  PM.run(Lowered);
  return Lowered;
}
