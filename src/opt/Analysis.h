//===- opt/Analysis.h - Shared dataflow helpers -----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable use/def collection over the structured AST, and the read-only
/// function analysis used by dead-call elimination (Figure 2): a function is
/// read-only when its body performs no stores, allocations, frees, casts, or
/// I/O and calls only read-only functions. Removing a call to a read-only
/// function is sound (its only possible observable effect is a fault, and
/// removing a potential fault only shrinks the behavior set).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_ANALYSIS_H
#define QCM_OPT_ANALYSIS_H

#include "lang/Ast.h"

#include <set>
#include <string>

namespace qcm {

/// Adds the variables read by \p E to \p Uses.
void collectExpUses(const Exp &E, std::set<std::string> &Uses);

/// Adds the variables read anywhere in \p I (recursively) to \p Uses.
void collectInstrUses(const Instr &I, std::set<std::string> &Uses);

/// Adds the variables assigned anywhere in \p I (recursively) to \p Defs.
void collectInstrDefs(const Instr &I, std::set<std::string> &Defs);

/// True if \p Name names a read-only function of \p P (defined, no memory
/// writes / allocation / casts / I/O, all callees read-only).
bool isReadOnlyFunction(const Program &P, const std::string &Name);

} // namespace qcm

#endif // QCM_OPT_ANALYSIS_H
