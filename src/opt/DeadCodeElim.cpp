//===- opt/DeadCodeElim.cpp -----------------------------------------------===//

#include "opt/DeadCodeElim.h"

#include "opt/Analysis.h"

using namespace qcm;

namespace {

class Eliminator {
public:
  Eliminator(const Program &P, const DceOptions &Options)
      : P(P), Options(Options) {}

  bool Changed = false;

  /// Processes \p I backwards with live-out set \p Live; updates \p Live to
  /// the live-in set. Sets \p Remove when the whole statement is dead and
  /// removable.
  void processInstr(Instr &I, std::set<std::string> &Live, bool &Remove) {
    Remove = false;
    switch (I.InstrKind) {
    case Instr::Kind::Seq: {
      for (auto It = I.Stmts.rbegin(); It != I.Stmts.rend();) {
        bool RemoveChild = false;
        processInstr(**It, Live, RemoveChild);
        if (RemoveChild) {
          // Erase via the forward iterator corresponding to It; the
          // returned iterator re-seats the reverse iterator correctly.
          It = std::vector<std::unique_ptr<Instr>>::reverse_iterator(
              I.Stmts.erase(std::next(It).base()));
          Changed = true;
        } else {
          ++It;
        }
      }
      return;
    }

    case Instr::Kind::Assign: {
      bool Dead = I.Var.empty() || !Live.count(I.Var);
      if (!I.Var.empty() && Dead) {
        switch (I.Rhs->RExpKind) {
        case RExp::Kind::Pure:
          Remove = Options.RemovePureAssigns;
          break;
        case RExp::Kind::Malloc:
          Remove = Options.RemoveDeadAllocs;
          break;
        case RExp::Kind::Cast:
          Remove = Options.RemoveDeadCasts;
          break;
        case RExp::Kind::Input:
        case RExp::Kind::Free:
        case RExp::Kind::Output:
          Remove = false; // Observable or deallocating effects stay.
          break;
        }
      }
      if (Remove)
        return;
      if (!I.Var.empty())
        Live.erase(I.Var);
      if (I.Rhs->Arg)
        collectExpUses(*I.Rhs->Arg, Live);
      return;
    }

    case Instr::Kind::Load: {
      if (!Live.count(I.Var) && Options.RemoveDeadLoads) {
        Remove = true;
        return;
      }
      Live.erase(I.Var);
      collectExpUses(*I.Addr, Live);
      return;
    }

    case Instr::Kind::Store:
      collectExpUses(*I.Addr, Live);
      collectExpUses(*I.StoreVal, Live);
      return;

    case Instr::Kind::Call: {
      if (Options.RemoveReadOnlyCalls && isReadOnlyFunction(P, I.Callee)) {
        // Arguments are passed by value and the language has no returns, so
        // a read-only callee cannot influence the caller.
        Remove = true;
        return;
      }
      for (const auto &A : I.Args)
        collectExpUses(*A, Live);
      return;
    }

    case Instr::Kind::If: {
      std::set<std::string> ThenLive = Live;
      std::set<std::string> ElseLive = Live;
      bool RemoveChild = false;
      processInstr(*I.Then, ThenLive, RemoveChild);
      if (I.Else)
        processInstr(*I.Else, ElseLive, RemoveChild);
      Live = std::move(ThenLive);
      Live.insert(ElseLive.begin(), ElseLive.end());
      collectExpUses(*I.Cond, Live);
      return;
    }

    case Instr::Kind::While: {
      // Conservative: anything used anywhere in the loop (in any later
      // iteration) is live throughout, so extend the live-out set with all
      // uses of the loop before processing the body.
      std::set<std::string> LoopUses;
      collectExpUses(*I.Cond, LoopUses);
      collectInstrUses(*I.Body, LoopUses);
      Live.insert(LoopUses.begin(), LoopUses.end());
      bool RemoveChild = false;
      processInstr(*I.Body, Live, RemoveChild);
      Live.insert(LoopUses.begin(), LoopUses.end());
      return;
    }
    }
  }

private:
  const Program &P;
  const DceOptions &Options;
};

} // namespace

bool DeadCodeElimPass::runOnFunction(FunctionDecl &F, const Program &P) {
  if (!F.Body)
    return false;
  Eliminator E(P, Options);
  std::set<std::string> Live; // Nothing is live-out of a function.
  bool RemoveAll = false;
  E.processInstr(*F.Body, Live, RemoveAll);
  return E.Changed;
}
