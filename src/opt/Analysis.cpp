//===- opt/Analysis.cpp ---------------------------------------------------===//

#include "opt/Analysis.h"

using namespace qcm;

void qcm::collectExpUses(const Exp &E, std::set<std::string> &Uses) {
  switch (E.ExpKind) {
  case Exp::Kind::IntLit:
  case Exp::Kind::Global:
    return;
  case Exp::Kind::Var:
    Uses.insert(E.Name);
    return;
  case Exp::Kind::Binary:
    collectExpUses(*E.Lhs, Uses);
    collectExpUses(*E.Rhs, Uses);
    return;
  }
}

void qcm::collectInstrUses(const Instr &I, std::set<std::string> &Uses) {
  switch (I.InstrKind) {
  case Instr::Kind::Call:
    for (const auto &A : I.Args)
      collectExpUses(*A, Uses);
    return;
  case Instr::Kind::Assign:
    if (I.Rhs->Arg)
      collectExpUses(*I.Rhs->Arg, Uses);
    return;
  case Instr::Kind::Load:
    collectExpUses(*I.Addr, Uses);
    return;
  case Instr::Kind::Store:
    collectExpUses(*I.Addr, Uses);
    collectExpUses(*I.StoreVal, Uses);
    return;
  case Instr::Kind::If:
    collectExpUses(*I.Cond, Uses);
    collectInstrUses(*I.Then, Uses);
    if (I.Else)
      collectInstrUses(*I.Else, Uses);
    return;
  case Instr::Kind::While:
    collectExpUses(*I.Cond, Uses);
    collectInstrUses(*I.Body, Uses);
    return;
  case Instr::Kind::Seq:
    for (const auto &S : I.Stmts)
      collectInstrUses(*S, Uses);
    return;
  }
}

void qcm::collectInstrDefs(const Instr &I, std::set<std::string> &Defs) {
  switch (I.InstrKind) {
  case Instr::Kind::Assign:
  case Instr::Kind::Load:
    if (!I.Var.empty())
      Defs.insert(I.Var);
    return;
  case Instr::Kind::If:
    collectInstrDefs(*I.Then, Defs);
    if (I.Else)
      collectInstrDefs(*I.Else, Defs);
    return;
  case Instr::Kind::While:
    collectInstrDefs(*I.Body, Defs);
    return;
  case Instr::Kind::Seq:
    for (const auto &S : I.Stmts)
      collectInstrDefs(*S, Defs);
    return;
  case Instr::Kind::Call:
  case Instr::Kind::Store:
    return;
  }
}

namespace {

bool isReadOnlyInstr(const Program &P, const Instr &I,
                     std::set<std::string> &Visiting);

bool isReadOnlyImpl(const Program &P, const std::string &Name,
                    std::set<std::string> &Visiting) {
  const FunctionDecl *F = P.findFunction(Name);
  if (!F || F->isExtern())
    return false;
  if (!Visiting.insert(Name).second)
    return true; // Recursive cycle: judged by the rest of the body.
  bool Result = isReadOnlyInstr(P, *F->Body, Visiting);
  Visiting.erase(Name);
  return Result;
}

bool isReadOnlyInstr(const Program &P, const Instr &I,
                     std::set<std::string> &Visiting) {
  switch (I.InstrKind) {
  case Instr::Kind::Store:
    return false;
  case Instr::Kind::Assign:
    switch (I.Rhs->RExpKind) {
    case RExp::Kind::Pure:
      return true;
    case RExp::Kind::Malloc:
    case RExp::Kind::Free:
    case RExp::Kind::Cast:
    case RExp::Kind::Input:
    case RExp::Kind::Output:
      return false;
    }
    return false;
  case Instr::Kind::Load:
    return true; // Loads read memory; they cannot write or emit events.
  case Instr::Kind::Call:
    return isReadOnlyImpl(P, I.Callee, Visiting);
  case Instr::Kind::If:
    return isReadOnlyInstr(P, *I.Then, Visiting) &&
           (!I.Else || isReadOnlyInstr(P, *I.Else, Visiting));
  case Instr::Kind::While:
    return isReadOnlyInstr(P, *I.Body, Visiting);
  case Instr::Kind::Seq:
    for (const auto &S : I.Stmts)
      if (!isReadOnlyInstr(P, *S, Visiting))
        return false;
    return true;
  }
  return false;
}

} // namespace

bool qcm::isReadOnlyFunction(const Program &P, const std::string &Name) {
  std::set<std::string> Visiting;
  return isReadOnlyImpl(P, Name, Visiting);
}
