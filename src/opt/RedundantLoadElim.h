//===- opt/RedundantLoadElim.h - Availability-based load removal -*- C++ -*-=//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward availability analysis over memory events: walking each function
/// top-down, the pass tracks which locations (AddrKey) are known to hold a
/// value already named by a register, a constant, or a global address, and
/// rewrites loads of such locations into plain assignments.
///
/// The basic mode is valid under *all* models: between the fact's
/// establishment (a store or load of the same location) and its use there is
/// no possibly-aliasing store, free, call, or control-flow merge, so source
/// and target read the same value — and replacing a load with a register
/// copy can only remove a potential fault, which only shrinks the behavior
/// set. The across-calls mode keeps facts about owned blocks
/// (ownedMallocPointers) live across calls — the load-forwarding half of the
/// paper's Figure 3 (constant propagation across bar()), valid under the
/// logical-family models and invalid under the concrete model, where the
/// callee's context can guess the block's address and overwrite it.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_REDUNDANTLOADELIM_H
#define QCM_OPT_REDUNDANTLOADELIM_H

#include "opt/Pass.h"

namespace qcm {

/// Gates for the availability modes.
struct RleOptions {
  /// Keep facts about owned blocks across calls; valid under the
  /// logical-family models only.
  bool AcrossCalls = false;
};

/// The redundant load elimination pass.
class RedundantLoadElimPass : public FunctionPass {
public:
  explicit RedundantLoadElimPass(RleOptions Options = {})
      : Options(Options) {}

  std::string name() const override { return "rle"; }
  bool runOnFunction(FunctionDecl &F, const Program &P) override;

private:
  RleOptions Options;
};

} // namespace qcm

#endif // QCM_OPT_REDUNDANTLOADELIM_H
