//===- opt/DeadCodeElim.h - Liveness-based dead code removal ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward-liveness dead code elimination with per-operation gates, because
/// the different removals have different standing in the paper:
///
/// * dead pure assignments and dead loads: justified in all block models;
/// * dead read-only calls (Figure 2): justified by the static/dynamic type
///   discipline of the quasi-concrete model;
/// * dead allocations (DAE): justified in the logical-family models,
///   *invalid* in the concrete model (Section 1) — gated;
/// * dead pointer-to-integer casts: casts are effectful in the
///   quasi-concrete model (they realize blocks), so this removal is only
///   sound when compiling *to the fully concrete model* (Section 3.6) —
///   gated, used by the lowering compiler of Section 6.6.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_DEADCODEELIM_H
#define QCM_OPT_DEADCODEELIM_H

#include "opt/Pass.h"

namespace qcm {

/// Which categories of dead statements may be removed.
struct DceOptions {
  bool RemovePureAssigns = true;
  bool RemoveDeadLoads = true;
  bool RemoveReadOnlyCalls = true;
  /// Dead allocation elimination; unsound under the concrete model.
  bool RemoveDeadAllocs = false;
  /// Dead cast elimination; only sound when targeting the concrete model.
  bool RemoveDeadCasts = false;
};

/// The dead code elimination pass.
class DeadCodeElimPass : public FunctionPass {
public:
  explicit DeadCodeElimPass(DceOptions Options = {}) : Options(Options) {}

  std::string name() const override { return "dce"; }
  bool runOnFunction(FunctionDecl &F, const Program &P) override;

private:
  DceOptions Options;
};

} // namespace qcm

#endif // QCM_OPT_DEADCODEELIM_H
