//===- opt/PipelineSpec.h - Declarative pass pipelines ----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative, round-trippable pass pipeline descriptions:
///
///   spec  := elem (',' elem)*
///   elem  := NAME | 'fix' (':' N)? '(' spec ')'
///
/// `ownership,constprop,fix(arith,dce)` runs ownership once, constprop
/// once, then iterates arith and dce to a fixpoint. `fix:N(...)` sets the
/// group's iteration bound explicitly; a plain `fix(...)` uses the
/// caller's default. parse() and toString() round-trip.
///
/// Pass names resolve against a registry that also records, per pass, the
/// memory models under which the transformation claims to be valid — the
/// paper's central point rendered as metadata (dead-allocation elimination
/// is registered as logical-family-only, exactly the Section 1 argument).
/// Validation (refinement/Validate.h) checks each application only under
/// the models the pass claims; a pass surviving a model it does not claim
/// proves nothing, and one failing a model it never claimed is not a bug.
///
/// The registry deliberately contains one hidden, broken pass — `bug-dse`,
/// a dead-store-elimination variant that drops a *live* store — as the
/// translation validator's canary: pipelines naming it must be rejected
/// with a counterexample (tests/pipeline_fuzz_test.cpp, CI).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_PIPELINESPEC_H
#define QCM_OPT_PIPELINESPEC_H

#include "memory/Memory.h"
#include "opt/Pass.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace qcm {

/// A parsed pipeline description.
struct PipelineSpec {
  struct Elem {
    enum class Kind { Pass, Fix };

    Kind ElemKind = Kind::Pass;
    std::string Name;           ///< Pass
    std::vector<Elem> Children; ///< Fix
    unsigned MaxIterations = 0; ///< Fix; 0 = use the executor default
  };

  std::vector<Elem> Elems;

  bool empty() const { return Elems.empty(); }

  /// Canonical text form; parse(toString()) == *this.
  std::string toString() const;

  /// Parses \p Text against the grammar above. Pass names are *not*
  /// resolved here (buildPipeline does that); nullopt with \p Error on
  /// malformed syntax.
  static std::optional<PipelineSpec> parse(const std::string &Text,
                                           std::string &Error);

  /// The tool default: fix(ownership,constprop,arith,dce).
  static PipelineSpec defaultSpec();

  /// A seeded random pipeline over the visible registry passes: 1-5
  /// top-level elements, some of them small fixpoint groups. Deterministic
  /// in \p Seed; never names hidden passes.
  static PipelineSpec random(uint64_t Seed);
};

/// Options threaded to the pass factories (the legacy --dae switch).
struct PassFactoryOptions {
  /// dce may remove dead allocations (narrows its claimed validity to the
  /// logical family).
  bool Dae = false;
};

/// One registry entry.
struct PassInfo {
  std::string Name;
  std::string Summary;
  /// Hidden passes resolve in specs but are excluded from listings and
  /// random pipelines (the buggy canary).
  bool Hidden = false;
  std::function<std::unique_ptr<FunctionPass>(const PassFactoryOptions &)>
      Make;
  std::function<std::vector<ModelKind>(const PassFactoryOptions &)>
      ValidUnder;
};

/// All registered passes, in listing order.
const std::vector<PassInfo> &passRegistry();

/// The entry named \p Name, or null.
const PassInfo *findPass(const std::string &Name);

/// Registered names within edit distance 2 of \p Name, closest first —
/// the "did you mean" list for unknown-pass diagnostics.
std::vector<std::string> suggestPassNames(const std::string &Name);

/// True when pass \p Name claims validity under \p Model.
bool passClaimsValidity(const std::string &Name, ModelKind Model,
                        const PassFactoryOptions &Opts);

/// Builds an executable pipeline from \p Spec: resolves every pass name
/// (unknown names fail with a did-you-mean diagnostic in \p Error), and
/// gives plain `fix(...)` groups \p DefaultFixIterations. The returned
/// pipeline owns its pass instances.
std::optional<PassPipeline> buildPipeline(const PipelineSpec &Spec,
                                          const PassFactoryOptions &Opts,
                                          std::string &Error,
                                          unsigned DefaultFixIterations = 8);

} // namespace qcm

#endif // QCM_OPT_PIPELINESPEC_H
