//===- opt/Lowering.h - Compilers between the models ------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two compilers of Section 6.6, from the language under the
/// quasi-concrete model to the same language under the fully concrete
/// model:
///
/// * the identity compiler — the program is unchanged; only the memory
///   model underneath changes (all blocks realized eagerly, casts become
///   no-ops);
/// * the dead-cast-eliminating compiler — additionally removes dead
///   pointer-to-integer casts (and optionally the dead allocations they
///   kept alive, Figure 5). In the quasi-concrete model casts are effectful
///   (they realize blocks) and cannot be removed; in the concrete target
///   they are no-ops, so removing them during lowering is sound
///   (Section 3.6).
///
/// Both compilers are syntactic; their correctness statements are
/// cross-model simulations checked by refinement/Simulation.h.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_LOWERING_H
#define QCM_OPT_LOWERING_H

#include "lang/Ast.h"

namespace qcm {

/// Knobs for the lowering compiler.
struct LoweringOptions {
  /// Remove casts whose result is dead (sound only because the target is
  /// concrete).
  bool EliminateDeadCasts = true;
  /// Also remove allocations that become dead once their casts are gone
  /// (the combined removal of Section 3.6 / Figure 5).
  bool EliminateDeadAllocs = false;
};

/// The identity compiler: returns the program unchanged (cloned). Running
/// the result under the concrete model is the compilation.
Program identityCompile(const Program &P);

/// The dead-cast-eliminating lowering compiler.
Program lowerToConcrete(const Program &P, LoweringOptions Options = {});

} // namespace qcm

#endif // QCM_OPT_LOWERING_H
