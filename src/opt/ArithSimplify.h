//===- opt/ArithSimplify.h - Integer arithmetic simplification --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algebraic simplification of integer expressions: constant folding plus
/// normalization of +/-/constant-multiple trees over int-typed operands into
/// canonical linear combinations. This is the "full range of arithmetic
/// optimizations on integer variables" that the static type discipline of
/// Section 3.5 licenses: because int variables provably contain machine
/// integers (never logical addresses), identities like
///
///   (a - b) + (2*b - b)  ==  a                        (Figure 1)
///   a + (b - c)          ==  (a + b) - c              (Figure 4)
///
/// hold unconditionally with wrap-around arithmetic. Under CompCert's
/// looser value discipline these rewrites are unsound, which is exactly the
/// Figure 4 experiment.
///
/// The pass never touches expressions with ptr-typed subterms; run the type
/// checker first so static types are annotated.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_ARITHSIMPLIFY_H
#define QCM_OPT_ARITHSIMPLIFY_H

#include "opt/Pass.h"

namespace qcm {

/// The arithmetic simplification pass.
class ArithSimplifyPass : public FunctionPass {
public:
  std::string name() const override { return "arith-simplify"; }
  bool runOnFunction(FunctionDecl &F, const Program &P) override;
};

/// Simplifies one expression; returns the simplified tree (possibly the
/// input, moved). Exposed for tests.
std::unique_ptr<Exp> simplifyExp(std::unique_ptr<Exp> E);

} // namespace qcm

#endif // QCM_OPT_ARITHSIMPLIFY_H
