//===- opt/MemoryLiveness.h - Memory-location dataflow helpers --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared substrate of the two liveness-driven memory passes (dead-store
/// elimination and redundant-load elimination, generalizing the paper's
/// Section 6 examples):
///
/// * AddrKey — a syntactic memory location: a base (pointer variable or
///   global block) plus a constant word offset, or the base's whole block.
///   Address expressions of the shapes `p`, `g`, `p + c`, `c + p`, `p - c`
///   map to keys; anything else is an unknown location.
/// * mayAlias — the conservative may-alias relation between keys. Two keys
///   with the same base alias iff their offsets can coincide; distinct
///   global blocks never alias (pointer arithmetic never crosses block
///   boundaries in any of the models — out-of-bounds access faults, it does
///   not land in a neighbor); a base that is an *owned* malloc result
///   (see ownedMallocPointers) aliases nothing but itself.
/// * ownedMallocPointers — the freshness/escape analysis of Section 7: a
///   pointer variable whose every assignment is a fresh malloc() and whose
///   value is only ever used as a load/store base address. No context or
///   callee can forge its logical address (the core guarantee of the
///   logical-family models), so facts about its block survive calls and its
///   trailing stores are dead — under the logical-family models only.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_OPT_MEMORYLIVENESS_H
#define QCM_OPT_MEMORYLIVENESS_H

#include "lang/Ast.h"

#include <optional>
#include <set>
#include <string>

namespace qcm {

/// A syntactic memory location: base plus constant word offset, or the
/// base's whole block (WholeBase).
struct AddrKey {
  enum class Base { Var, Global };

  Base BaseKind = Base::Var;
  std::string Name;
  Word Offset = 0;
  bool WholeBase = false;

  friend bool operator==(const AddrKey &A, const AddrKey &B) {
    return A.BaseKind == B.BaseKind && A.Name == B.Name &&
           A.Offset == B.Offset && A.WholeBase == B.WholeBase;
  }

  std::string toString() const;
};

/// The key for address expression \p Addr when it has one of the recognized
/// shapes (`p`, `g`, `p + c`, `c + p`, `p - c`, and the global analogues);
/// nullopt for anything else (an unknown location).
std::optional<AddrKey> addrKeyFor(const Exp &Addr);

/// Whether \p A names exactly the location of \p B (same base, same
/// concrete offset; a WholeBase key covers every offset of its base).
bool coversLocation(const AddrKey &A, const AddrKey &B);

/// Conservative may-alias between two keys. \p OwnedBases are variables
/// known to hold distinct fresh blocks (ownedMallocPointers): a key based
/// on one aliases only keys with the same base.
bool mayAlias(const AddrKey &A, const AddrKey &B,
              const std::set<std::string> &OwnedBases);

/// Pointer variables of \p F that own their block: every assignment to the
/// variable is a fresh `malloc(...)`, there is at least one, the variable
/// is not a parameter, and its value is used *only* as the base of a
/// load/store address of a recognized AddrKey shape — never passed to a
/// call, stored, freed, cast, output, copied, or mixed into arithmetic that
/// isn't a recognized address shape. Such a block's logical address cannot
/// be forged by any context or callee (Section 2.2), which is what licenses
/// the logical-family-only modes of the memory passes.
std::set<std::string> ownedMallocPointers(const FunctionDecl &F);

} // namespace qcm

#endif // QCM_OPT_MEMORYLIVENESS_H
