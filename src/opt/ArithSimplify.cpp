//===- opt/ArithSimplify.cpp ----------------------------------------------===//

#include "opt/ArithSimplify.h"

#include "lang/PrettyPrint.h"

#include <map>

using namespace qcm;

namespace {

/// A linear combination over atomic subexpressions: Const + sum of
/// Coeff * Atom, with all arithmetic modulo 2^32. Atoms are keyed by their
/// printed form; the exemplar tree is cloned on rebuild.
struct LinForm {
  Word Const = 0;
  // Key -> (exemplar, coefficient).
  std::map<std::string, std::pair<const Exp *, Word>> Terms;

  void addTerm(const Exp &Atom, Word Coeff) {
    if (Coeff == 0)
      return;
    std::string Key = printExp(Atom);
    auto [It, Inserted] = Terms.emplace(Key, std::make_pair(&Atom, Coeff));
    if (!Inserted) {
      It->second.second = wrapAdd(It->second.second, Coeff);
      if (It->second.second == 0)
        Terms.erase(It);
    }
  }

  void addScaled(const LinForm &Other, Word Scale) {
    Const = wrapAdd(Const, wrapMul(Other.Const, Scale));
    for (const auto &[Key, TermInfo] : Other.Terms)
      addTerm(*TermInfo.first, wrapMul(TermInfo.second, Scale));
  }

  bool isConstant() const { return Terms.empty(); }
};

std::unique_ptr<Exp> simplifyTree(std::unique_ptr<Exp> E);

/// Linearizes an int-typed expression. Subtrees that are not +/-/constant-
/// multiple structure (including ptr-typed ones like same-block pointer
/// subtraction) become atoms; their children are simplified first.
LinForm linearize(const Exp &E) {
  LinForm Form;
  if (E.ExpKind == Exp::Kind::IntLit) {
    Form.Const = E.IntValue;
    return Form;
  }
  if (E.ExpKind == Exp::Kind::Binary && E.StaticType == Type::Int &&
      E.Lhs->StaticType == Type::Int && E.Rhs->StaticType == Type::Int) {
    switch (E.Op) {
    case BinaryOp::Add: {
      Form.addScaled(linearize(*E.Lhs), 1);
      Form.addScaled(linearize(*E.Rhs), 1);
      return Form;
    }
    case BinaryOp::Sub: {
      Form.addScaled(linearize(*E.Lhs), 1);
      // -1 modulo 2^32.
      Form.addScaled(linearize(*E.Rhs), static_cast<Word>(-1));
      return Form;
    }
    case BinaryOp::Mul: {
      LinForm L = linearize(*E.Lhs);
      LinForm R = linearize(*E.Rhs);
      if (L.isConstant()) {
        Form.addScaled(R, L.Const);
        return Form;
      }
      if (R.isConstant()) {
        Form.addScaled(L, R.Const);
        return Form;
      }
      break; // Non-linear product: atomic.
    }
    case BinaryOp::And:
    case BinaryOp::Eq:
      break; // Atomic.
    }
  }
  Form.addTerm(E, 1);
  return Form;
}

std::unique_ptr<Exp> makeIntTyped(std::unique_ptr<Exp> E) {
  E->StaticType = Type::Int;
  return E;
}

/// Rebuilds a canonical expression from a linear form. Atoms were already
/// simplified before linearization and are cloned as-is.
std::unique_ptr<Exp> rebuild(const LinForm &Form) {
  std::unique_ptr<Exp> Acc;
  for (const auto &[Key, TermInfo] : Form.Terms) {
    const auto &[Atom, Coeff] = TermInfo;
    // Prefer "x" and "- x" over multiplications by 1 and -1.
    bool Negated = Coeff == static_cast<Word>(-1);
    std::unique_ptr<Exp> Term;
    if (Coeff == 1 || Negated) {
      Term = Atom->clone();
    } else {
      Term = makeIntTyped(Exp::makeBinary(
          BinaryOp::Mul, makeIntTyped(Exp::makeIntLit(Coeff)),
          Atom->clone()));
    }
    if (!Acc) {
      if (Negated)
        Term = makeIntTyped(Exp::makeBinary(
            BinaryOp::Sub, makeIntTyped(Exp::makeIntLit(0)),
            std::move(Term)));
      Acc = std::move(Term);
      continue;
    }
    Acc = makeIntTyped(Exp::makeBinary(Negated ? BinaryOp::Sub
                                               : BinaryOp::Add,
                                       std::move(Acc), std::move(Term)));
  }
  if (!Acc)
    return makeIntTyped(Exp::makeIntLit(Form.Const));
  if (Form.Const != 0)
    Acc = makeIntTyped(Exp::makeBinary(BinaryOp::Add, std::move(Acc),
                                       makeIntTyped(Exp::makeIntLit(
                                           Form.Const))));
  return Acc;
}

/// Recursively simplifies an expression tree.
std::unique_ptr<Exp> simplifyTree(std::unique_ptr<Exp> E) {
  if (E->ExpKind != Exp::Kind::Binary)
    return E;
  // Pointer-typed arithmetic is left alone structurally (children still
  // simplify), but p + 0 and p - 0 fold away.
  if (E->StaticType == Type::Ptr || E->Lhs->StaticType == Type::Ptr ||
      E->Rhs->StaticType == Type::Ptr) {
    E->Lhs = simplifyTree(std::move(E->Lhs));
    E->Rhs = simplifyTree(std::move(E->Rhs));
    if (E->StaticType == Type::Ptr &&
        (E->Op == BinaryOp::Add || E->Op == BinaryOp::Sub) &&
        E->Lhs->StaticType == Type::Ptr &&
        E->Rhs->ExpKind == Exp::Kind::IntLit && E->Rhs->IntValue == 0)
      return std::move(E->Lhs);
    return E;
  }
  // Integer arithmetic: simplify the children first so that atomic terms
  // (non-linear products, masks, comparisons) are already in normal form,
  // then canonicalize the +/- structure as a linear combination.
  E->Lhs = simplifyTree(std::move(E->Lhs));
  E->Rhs = simplifyTree(std::move(E->Rhs));
  LinForm Form = linearize(*E);
  std::unique_ptr<Exp> Rebuilt = rebuild(Form);
  // Non-linear roots (&, ==, var*var) come back unchanged as single atoms;
  // still constant-fold them when both children are literals.
  if (Rebuilt->ExpKind == Exp::Kind::Binary &&
      Rebuilt->Lhs->ExpKind == Exp::Kind::IntLit &&
      Rebuilt->Rhs->ExpKind == Exp::Kind::IntLit) {
    Word A = Rebuilt->Lhs->IntValue, B = Rebuilt->Rhs->IntValue;
    switch (Rebuilt->Op) {
    case BinaryOp::Add:
      return makeIntTyped(Exp::makeIntLit(wrapAdd(A, B)));
    case BinaryOp::Sub:
      return makeIntTyped(Exp::makeIntLit(wrapSub(A, B)));
    case BinaryOp::Mul:
      return makeIntTyped(Exp::makeIntLit(wrapMul(A, B)));
    case BinaryOp::And:
      return makeIntTyped(Exp::makeIntLit(A & B));
    case BinaryOp::Eq:
      return makeIntTyped(Exp::makeIntLit(A == B ? 1 : 0));
    }
  }
  return Rebuilt;
}

/// Applies simplifyExp to every expression of an instruction tree; returns
/// true on any change.
bool simplifyInstr(Instr &I) {
  bool Changed = false;
  auto Apply = [&Changed](std::unique_ptr<Exp> &Slot) {
    if (!Slot)
      return;
    std::string Before = printExp(*Slot);
    Slot = simplifyExp(std::move(Slot));
    if (printExp(*Slot) != Before)
      Changed = true;
  };
  switch (I.InstrKind) {
  case Instr::Kind::Call:
    for (auto &A : I.Args)
      Apply(A);
    break;
  case Instr::Kind::Assign:
    Apply(I.Rhs->Arg);
    break;
  case Instr::Kind::Load:
    Apply(I.Addr);
    break;
  case Instr::Kind::Store:
    Apply(I.Addr);
    Apply(I.StoreVal);
    break;
  case Instr::Kind::If:
    Apply(I.Cond);
    Changed |= simplifyInstr(*I.Then);
    if (I.Else)
      Changed |= simplifyInstr(*I.Else);
    break;
  case Instr::Kind::While:
    Apply(I.Cond);
    Changed |= simplifyInstr(*I.Body);
    break;
  case Instr::Kind::Seq:
    for (auto &S : I.Stmts)
      Changed |= simplifyInstr(*S);
    break;
  }
  return Changed;
}

} // namespace

std::unique_ptr<Exp> qcm::simplifyExp(std::unique_ptr<Exp> E) {
  return simplifyTree(std::move(E));
}

bool ArithSimplifyPass::runOnFunction(FunctionDecl &F, const Program &) {
  if (!F.Body)
    return false;
  return simplifyInstr(*F.Body);
}
