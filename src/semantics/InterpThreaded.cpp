//===- semantics/InterpThreaded.cpp - Direct-threaded dispatch ------------===//
//
// The computed-goto execution engine. Blocks of QIR are decoded on first
// entry (ir/Decoded.h) into arrays of {label address, pre-resolved
// operands} and re-entered through the per-machine translation cache from
// then on; dispatch between decoded instructions is one indirect goto
// through the instruction's own label slot.
//
// This loop must stay observationally identical to the switch loop in
// Interp.cpp: same fault messages, same event order, same step counts, and
// the same fuel/watchdog trip points (the Gate op below is a verbatim copy
// of runSwitch()'s statement-boundary preamble). It deliberately carries NO
// observation hooks — Machine::wantThreaded() routes any run with an
// OnInstr observer, trace sink, or fault-injection decorator to the switch
// loop, so a hook the hot path never tests for can never be missed.
//
// Whole-file no-op when the build or compiler lacks computed goto;
// Machine::run() then never calls runThreaded().
//
//===----------------------------------------------------------------------===//

#include "semantics/Interp.h"

#if QCM_THREADED_DISPATCH_ACTIVE

#include <cassert>

using namespace qcm;
using qir::DInstr;
using qir::DecodedBlock;
using qir::DOp;

// One indirect jump per instruction: the decoded stream carries each op's
// label address, so there is no central dispatch site for the branch
// predictor to mispredict on.
#define QCM_NEXT()                                                            \
  do {                                                                        \
    ++IP;                                                                     \
    goto *IP->Label;                                                          \
  } while (0)

// Every exit syncs the hoisted step counter back to the member first; see
// the StepsL comment in runThreaded().
#define QCM_FAULT(F)                                                          \
  do {                                                                        \
    Steps = StepsL;                                                           \
    fault(F);                                                                 \
    return *PendingSignal;                                                    \
  } while (0)

Signal Machine::runThreaded() {
  // Label table, indexed by DOp. The addresses are local to this function
  // invocation's code, which is why translation happens from inside the
  // loop (and why the cache is per-machine, never shared).
  static const void *const Labels[static_cast<size_t>(DOp::NumDOps)] = {
      &&L_Gate,
      &&L_PushConst,
      &&L_PushSlotDeclared,
      &&L_PushSlotHidden,
      &&L_PushGlobal,
      &&L_Binary,
      &&L_StoreSlotDeclared,
      &&L_StoreSlotHidden,
      &&L_Drop,
      &&L_LoadMem,
      &&L_StoreMem,
      &&L_Malloc,
      &&L_FreeMem,
      &&L_Cast,
      &&L_Input,
      &&L_Output,
      &&L_Trap,
      &&L_Call,
      &&L_CallExtern,
      &&L_Jump,
      &&L_JumpIfZero,
      &&L_Ret,
      &&L_PushSlotBinary,
      &&L_PushConstBinary,
      &&L_PushConstStoreSlot,
      &&L_PushSlotCall,
      &&L_PushSlotJumpIfZero,
      &&L_BinaryJumpIfZero,
      &&L_SlotSlotBinaryStore,
      &&L_SlotConstBinaryStore,
  };

  // On invalidation every frame's linked resume pointer dangles into the
  // dropped translations; PC-driven dispatch (the Ret fallback) covers
  // those frames.
  if (!TCache.ensure(Module.get(), typeChecksActive()))
    for (Frame &Fr : Frames)
      Fr.ResumeIP = nullptr;

  const bool HasDeadline = Config.WallTimeoutMs != 0;
  const Value *Consts = Module->ConstPool.data();

  // The step counter lives in a local for the whole loop: the member is a
  // load+store through `this` at every statement gate, and nothing outside
  // this function can observe it mid-run — the only external reader is the
  // memory trace, and wantThreaded() routes every traced run to the switch
  // loop. Synced back to the member at every exit (gate trips, faults,
  // extern-call handoffs, the final Ret) so RunResult::Steps and the
  // switch-loop deopt margin always see the true count.
  uint64_t StepsL = Steps;
  const uint64_t StepLimit = Config.StepLimit;

  // Per-block execution state, refreshed at every block entry: the frame
  // vector, the arenas, and the eval-stack buffer may all reallocate when
  // a frame is pushed, and every push ends a block. The eval stack is
  // empty at every block boundary (blocks end at statement boundaries or
  // after a call consumed its arguments), so SP always re-enters at the
  // buffer base and the Top member stays 0 throughout.
  Frame *F;
  Value *Slots;
  uint8_t *Hidden;
  Value *SP;
  const DInstr *IP;

L_Dispatch : {
  // PC-driven block entry: run start, post-extern resume, and the Ret
  // fallback for frames without link state. Linked transfers (jumps,
  // branch arms, calls, linked rets) bypass this entirely.
  F = &Frames.back();
  Slots = SlotArena.data() + F->SlotBase;
  Hidden = HiddenArena.data() + F->HiddenBase;
  SP = Stack.data();
  size_t FnIdx = static_cast<size_t>(F->Fn - Module->Functions.data());
  IP = TCache.block(FnIdx, F->PC, Labels, DStats)->Code.data();
  goto *IP->Label;
}

L_Gate : {
  // Verbatim copy of runSwitch()'s statement-boundary preamble (minus the
  // observer, which wantThreaded() guarantees is absent): fuel is checked
  // and charged here and only here, so cutoffs trip at the same statement
  // index as the switch loop.
  if (StepsL >= StepLimit) {
    Steps = StepsL;
    F->PC = IP->C; // Pin the frame at the cut statement, switch-loop-style.
    HitStepLimit = true;
    Signal S;
    S.SignalKind = Signal::Kind::StepLimitReached;
    PendingSignal = S;
    return *PendingSignal;
  }
  if (HasDeadline && (StepsL & (WatchdogStride - 1)) == 0 &&
      std::chrono::steady_clock::now() >= Deadline) {
    Steps = StepsL;
    F->PC = IP->C;
    TimedOut = true;
    HitStepLimit = true;
    Signal S;
    S.SignalKind = Signal::Kind::StepLimitReached;
    PendingSignal = S;
    return *PendingSignal;
  }
  ++StepsL;
  QCM_NEXT();
}

L_PushConst : {
  *SP++ = Consts[IP->A];
  QCM_NEXT();
}

L_PushSlotDeclared : {
  *SP++ = Slots[IP->A];
  QCM_NEXT();
}

L_PushSlotHidden : {
  if (!Hidden[IP->B])
    QCM_FAULT(Fault::undefined("read of undeclared variable '" +
                               F->Fn->SlotNames[IP->A] + "'"));
  *SP++ = Slots[IP->A];
  QCM_NEXT();
}

L_PushGlobal : {
  *SP++ = GlobalVals[IP->A];
  QCM_NEXT();
}

L_Binary : {
  Value R = *--SP;
  Value L = *--SP;
  // Integer/integer inline (the common case; evalBinary cannot fault on
  // it); everything else takes the shared Section 4 path.
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    Word Out = 0;
    switch (static_cast<BinaryOp>(IP->Aux)) {
    case BinaryOp::Add:
      Out = wrapAdd(A, B);
      break;
    case BinaryOp::Sub:
      Out = wrapSub(A, B);
      break;
    case BinaryOp::Mul:
      Out = wrapMul(A, B);
      break;
    case BinaryOp::And:
      Out = A & B;
      break;
    case BinaryOp::Eq:
      Out = A == B ? 1 : 0;
      break;
    }
    *SP++ = Value::makeInt(Out);
    QCM_NEXT();
  }
  Outcome<Value> V = evalBinary(static_cast<BinaryOp>(IP->Aux), L, R);
  if (!V)
    QCM_FAULT(V.fault());
  *SP++ = V.value();
  QCM_NEXT();
}

L_StoreSlotDeclared : {
  Slots[IP->A] = *--SP;
  QCM_NEXT();
}

L_StoreSlotHidden : {
  Slots[IP->A] = *--SP;
  Hidden[IP->B] = 1;
  QCM_NEXT();
}

L_Drop : {
  --SP;
  QCM_NEXT();
}

L_LoadMem : {
  Value Addr = *--SP;
  Outcome<Value> V = Mem->load(Addr);
  if (!V)
    QCM_FAULT(V.fault());
  // Dynamic type checking (Section 6.1), resolved into a flag at translate
  // time; the message is preformed in the string pool.
  if (IP->Aux2 & qir::DFlagTypeCheck) {
    switch (static_cast<qir::DeclKind>(IP->Aux)) {
    case qir::DeclKind::Hidden:
      QCM_FAULT(Fault::undefined(Module->StringPool[IP->B]));
    case qir::DeclKind::Int:
      if (V.value().isPtr())
        QCM_FAULT(Fault::undefined(Module->StringPool[IP->B]));
      break;
    case qir::DeclKind::Ptr:
      if (V.value().isInt())
        QCM_FAULT(Fault::undefined(Module->StringPool[IP->B]));
      break;
    }
  }
  Slots[IP->A] = V.value();
  if (IP->Aux2 & qir::DFlagDestHidden)
    Hidden[IP->D] = 1;
  QCM_NEXT();
}

L_StoreMem : {
  Value V = *--SP;
  Value Addr = *--SP;
  Outcome<Unit> Stored = Mem->store(Addr, V);
  if (!Stored)
    QCM_FAULT(Stored.fault());
  QCM_NEXT();
}

L_Malloc : {
  Value Size = *--SP;
  if (!Size.isInt())
    QCM_FAULT(Fault::undefined("malloc size is a logical address"));
  Outcome<Value> P = Mem->allocate(Size.intValue());
  if (!P)
    QCM_FAULT(P.fault());
  if (IP->A != qir::NoSlot) {
    Slots[IP->A] = P.value();
    if (IP->Aux2 & qir::DFlagDestHidden)
      Hidden[IP->D] = 1;
  }
  QCM_NEXT();
}

L_FreeMem : {
  Value P = *--SP;
  Outcome<Unit> Freed = Mem->deallocate(P);
  if (!Freed)
    QCM_FAULT(Freed.fault());
  QCM_NEXT();
}

L_Cast : {
  Value V = *--SP;
  Outcome<Value> Cast =
      IP->Aux == 0 ? Mem->castPtrToInt(V) : Mem->castIntToPtr(V);
  if (!Cast)
    QCM_FAULT(Cast.fault());
  if (IP->A != qir::NoSlot) {
    Slots[IP->A] = Cast.value();
    if (IP->Aux2 & qir::DFlagDestHidden)
      Hidden[IP->D] = 1;
  }
  QCM_NEXT();
}

L_Input : {
  Word V = InputCursor < Config.InputTape.size()
               ? Config.InputTape[InputCursor++]
               : 0;
  Events.push_back(Event::input(V));
  if (IP->A != qir::NoSlot) {
    Slots[IP->A] = Value::makeInt(V);
    if (IP->Aux2 & qir::DFlagDestHidden)
      Hidden[IP->D] = 1;
  }
  QCM_NEXT();
}

L_Output : {
  Value V = *--SP;
  if (!V.isInt())
    QCM_FAULT(Fault::undefined("output of a logical address"));
  Events.push_back(Event::output(V.intValue()));
  QCM_NEXT();
}

L_Trap : {
  QCM_FAULT(Fault::undefined(Module->StringPool[IP->A]));
}

L_Call : {
  // The popped arguments are read in place from the stack buffer;
  // pushFrame copies them out before any reallocation. The caller frame
  // records both resume forms — the linked pointer for the threaded Ret
  // and the PC for everything else — before the push can move it.
  SP -= IP->B;
  F->PC = IP->C;
  F->ResumeIP = IP->T1;
  const DecodedBlock *EB = TCache.block(IP->A, 0, Labels, DStats);
  pushFrame(Module->Functions[IP->A], SP, IP->B);
  F = &Frames.back();
  Slots = SlotArena.data() + F->SlotBase;
  Hidden = HiddenArena.data() + F->HiddenBase;
  SP = Stack.data();
  IP = EB->Code.data();
  goto *IP->Label;
}

L_CallExtern : {
  F->PC = IP->C;
  Steps = StepsL; // Handlers and signal consumers may observe the count.
  std::vector<Value> Args(SP - IP->B, SP);
  SP -= IP->B;
  const std::string &Callee = Module->StringPool[IP->A];
  auto HandlerIt = Handlers.find(Callee);
  if (HandlerIt != Handlers.end()) {
    Outcome<Unit> R = HandlerIt->second(*this, Args);
    if (!R)
      QCM_FAULT(R.fault());
    // The handler may have touched memory or events but not frames; resume
    // at the post-call statement through a fresh block entry.
    StepsL = Steps;
    goto L_Dispatch;
  }
  Signal S;
  S.SignalKind = Signal::Kind::ExternalCall;
  S.Callee = Callee;
  S.Args = std::move(Args);
  PendingSignal = std::move(S);
  return *PendingSignal;
}

L_Jump : {
  // Linked transfer: same frame, empty stack, no reallocation possible
  // since block entry — nothing to refresh, one indirect goto. The
  // frame's PC is left stale; every path that reads it (call, extern,
  // gate signal) re-pins it first.
  IP = IP->T0;
  goto *IP->Label;
}

L_JumpIfZero : {
  Value C = *--SP;
  if (!C.isInt())
    QCM_FAULT(Fault::undefined(Module->StringPool[IP->B]));
  IP = C.intValue() == 0 ? IP->T0 : IP->T1;
  goto *IP->Label;
}

L_Ret : {
  popFrame();
  if (Frames.empty()) {
    Steps = StepsL;
    Finished = true;
    Signal S;
    S.SignalKind = Signal::Kind::Finished;
    PendingSignal = S;
    return *PendingSignal;
  }
  // Linked return into the caller's decoded code; frames the switch loop
  // pushed (no link state) re-enter through their PC.
  F = &Frames.back();
  if (!F->ResumeIP)
    goto L_Dispatch;
  Slots = SlotArena.data() + F->SlotBase;
  Hidden = HiddenArena.data() + F->HiddenBase;
  SP = Stack.data();
  IP = F->ResumeIP;
  F->ResumeIP = nullptr;
  goto *IP->Label;
}

  //===--------------------------------------------------------------------===//
  // Fused superinstructions. Each is observationally the exact sequence of
  // its two source ops (same fault order, same messages); the step counter
  // is unaffected because fusion never crosses a statement gate.
  //===--------------------------------------------------------------------===//

L_PushSlotBinary : {
  // PushSlot (declared) + Binary: the slot value is the right operand.
  Value R = Slots[IP->A];
  Value L = *--SP;
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    Word Out = 0;
    switch (static_cast<BinaryOp>(IP->Aux)) {
    case BinaryOp::Add:
      Out = wrapAdd(A, B);
      break;
    case BinaryOp::Sub:
      Out = wrapSub(A, B);
      break;
    case BinaryOp::Mul:
      Out = wrapMul(A, B);
      break;
    case BinaryOp::And:
      Out = A & B;
      break;
    case BinaryOp::Eq:
      Out = A == B ? 1 : 0;
      break;
    }
    *SP++ = Value::makeInt(Out);
    QCM_NEXT();
  }
  Outcome<Value> V = evalBinary(static_cast<BinaryOp>(IP->Aux), L, R);
  if (!V)
    QCM_FAULT(V.fault());
  *SP++ = V.value();
  QCM_NEXT();
}

L_PushConstBinary : {
  Value R = Consts[IP->A];
  Value L = *--SP;
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    Word Out = 0;
    switch (static_cast<BinaryOp>(IP->Aux)) {
    case BinaryOp::Add:
      Out = wrapAdd(A, B);
      break;
    case BinaryOp::Sub:
      Out = wrapSub(A, B);
      break;
    case BinaryOp::Mul:
      Out = wrapMul(A, B);
      break;
    case BinaryOp::And:
      Out = A & B;
      break;
    case BinaryOp::Eq:
      Out = A == B ? 1 : 0;
      break;
    }
    *SP++ = Value::makeInt(Out);
    QCM_NEXT();
  }
  Outcome<Value> V = evalBinary(static_cast<BinaryOp>(IP->Aux), L, R);
  if (!V)
    QCM_FAULT(V.fault());
  *SP++ = V.value();
  QCM_NEXT();
}

L_PushConstStoreSlot : {
  // PushConst + StoreSlot (declared): no fault is possible in either half.
  Slots[IP->B] = Consts[IP->A];
  QCM_NEXT();
}

L_PushSlotCall : {
  // PushSlot (declared) + Call: the slot value is the last argument.
  *SP++ = Slots[IP->A];
  SP -= IP->D;
  F->PC = IP->C;
  F->ResumeIP = IP->T1;
  const DecodedBlock *EB = TCache.block(IP->B, 0, Labels, DStats);
  pushFrame(Module->Functions[IP->B], SP, IP->D);
  F = &Frames.back();
  Slots = SlotArena.data() + F->SlotBase;
  Hidden = HiddenArena.data() + F->HiddenBase;
  SP = Stack.data();
  IP = EB->Code.data();
  goto *IP->Label;
}

L_PushSlotJumpIfZero : {
  // PushSlot (declared) + JumpIfZero on the slot value.
  Value C = Slots[IP->A];
  if (!C.isInt())
    QCM_FAULT(Fault::undefined(Module->StringPool[IP->D]));
  IP = C.intValue() == 0 ? IP->T0 : IP->T1;
  goto *IP->Label;
}

L_SlotSlotBinaryStore : {
  // PushSlot + PushSlot + Binary + StoreSlot (all declared): one whole
  // `d = a op b` statement, three-address style. Same fault behavior as
  // the unfused sequence (only the Binary can fault); the eval stack is
  // untouched.
  Value L = Slots[IP->A];
  Value R = Slots[IP->B];
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    Word Out = 0;
    switch (static_cast<BinaryOp>(IP->Aux)) {
    case BinaryOp::Add:
      Out = wrapAdd(A, B);
      break;
    case BinaryOp::Sub:
      Out = wrapSub(A, B);
      break;
    case BinaryOp::Mul:
      Out = wrapMul(A, B);
      break;
    case BinaryOp::And:
      Out = A & B;
      break;
    case BinaryOp::Eq:
      Out = A == B ? 1 : 0;
      break;
    }
    Slots[IP->C] = Value::makeInt(Out);
    QCM_NEXT();
  }
  Outcome<Value> V = evalBinary(static_cast<BinaryOp>(IP->Aux), L, R);
  if (!V)
    QCM_FAULT(V.fault());
  Slots[IP->C] = V.value();
  QCM_NEXT();
}

L_SlotConstBinaryStore : {
  // PushSlot + PushConst + Binary + StoreSlot (declared): `d = a op k`.
  Value L = Slots[IP->A];
  Value R = Consts[IP->B];
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    Word Out = 0;
    switch (static_cast<BinaryOp>(IP->Aux)) {
    case BinaryOp::Add:
      Out = wrapAdd(A, B);
      break;
    case BinaryOp::Sub:
      Out = wrapSub(A, B);
      break;
    case BinaryOp::Mul:
      Out = wrapMul(A, B);
      break;
    case BinaryOp::And:
      Out = A & B;
      break;
    case BinaryOp::Eq:
      Out = A == B ? 1 : 0;
      break;
    }
    Slots[IP->C] = Value::makeInt(Out);
    QCM_NEXT();
  }
  Outcome<Value> V = evalBinary(static_cast<BinaryOp>(IP->Aux), L, R);
  if (!V)
    QCM_FAULT(V.fault());
  Slots[IP->C] = V.value();
  QCM_NEXT();
}

L_BinaryJumpIfZero : {
  // Binary + JumpIfZero on the result. A pointer-valued result faults
  // exactly as the unfused JumpIfZero would (StringPool[D]).
  Value R = *--SP;
  Value L = *--SP;
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    Word Out = 0;
    switch (static_cast<BinaryOp>(IP->Aux)) {
    case BinaryOp::Add:
      Out = wrapAdd(A, B);
      break;
    case BinaryOp::Sub:
      Out = wrapSub(A, B);
      break;
    case BinaryOp::Mul:
      Out = wrapMul(A, B);
      break;
    case BinaryOp::And:
      Out = A & B;
      break;
    case BinaryOp::Eq:
      Out = A == B ? 1 : 0;
      break;
    }
    IP = Out == 0 ? IP->T0 : IP->T1;
    goto *IP->Label;
  }
  Outcome<Value> V = evalBinary(static_cast<BinaryOp>(IP->Aux), L, R);
  if (!V)
    QCM_FAULT(V.fault());
  if (!V.value().isInt())
    QCM_FAULT(Fault::undefined(Module->StringPool[IP->D]));
  IP = V.value().intValue() == 0 ? IP->T0 : IP->T1;
  goto *IP->Label;
}
}

#endif // QCM_THREADED_DISPATCH_ACTIVE
