//===- semantics/ResultCodec.h - RunResult wire/journal codec ---*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-line JSON encoding of one RunResult, shared verbatim by the
/// checkpoint journal (tools/ToolSupport.h, --journal/--resume) and the
/// --isolate=process wire protocol (refinement/ProcessPool.h). One codec,
/// two transports: because both sides of the process boundary and both
/// halves of a resume round-trip through the same encoder, reports are
/// byte-identical across backends and across interruptions.
///
/// The encoding round-trips exactly: behavior kind, events, reason, steps,
/// timeout flag, consistency error, the full ModelStats counter block, and
/// the isolation fields (worker crashes, quarantine). DispatchStats is
/// deliberately NOT encoded — it is nondeterministic across --jobs levels
/// and never feeds a report.
///
/// Also exposes the mini JSON field extractor the journal has always used,
/// for other flat single-line objects (protocol init/request frames).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SEMANTICS_RESULTCODEC_H
#define QCM_SEMANTICS_RESULTCODEC_H

#include "semantics/Runner.h"

#include <string>

namespace qcm {

/// Pulls the raw text of field \p Key out of a single-line JSON object
/// produced by qcm::JsonObject (flat objects, string or numeric/bool
/// values). String values are unescaped into \p Raw. Returns false when the
/// key is absent or the line is truncated mid-value.
bool jsonExtractField(const std::string &Line, const std::string &Key,
                      std::string &Raw, bool &IsString);

/// Encodes cell \p Index's result as one JSON line (no trailing newline),
/// e.g. {"cell":3,"kind":"term","events":"o42","reason":"","steps":17,
/// "timedout":false,"stats":"..."}. Isolation fields are emitted only when
/// set, so crash-free journals are byte-identical to pre-isolation ones.
std::string encodeRunResult(size_t Index, const RunResult &R);

/// Inverse of encodeRunResult; tolerates unknown extra fields (the wire
/// protocol appends a "done" marker). False on any malformed or truncated
/// field — callers treat that as a torn journal tail or a corrupt frame.
bool decodeRunResult(const std::string &Line, size_t &Index, RunResult &R);

} // namespace qcm

#endif // QCM_SEMANTICS_RESULTCODEC_H
