//===- semantics/Event.h - Externally visible I/O events --------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observable events of the language: input() and output(Exp) produce
/// externally visible events (Section 2); behaviors are sequences of these.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SEMANTICS_EVENT_H
#define QCM_SEMANTICS_EVENT_H

#include "support/Ints.h"

#include <string>
#include <vector>

namespace qcm {

/// One observable I/O event.
struct Event {
  enum class Kind { Input, Output };

  Kind EventKind = Kind::Output;
  Word Value = 0;

  static Event input(Word V) { return Event{Kind::Input, V}; }
  static Event output(Word V) { return Event{Kind::Output, V}; }

  friend bool operator==(const Event &A, const Event &B) {
    return A.EventKind == B.EventKind && A.Value == B.Value;
  }

  std::string toString() const {
    return (EventKind == Kind::Input ? "in(" : "out(") + wordToString(Value) +
           ")";
  }
};

/// Renders an event sequence as "out(1).in(2).out(3)".
std::string eventsToString(const std::vector<Event> &Events);

/// True if \p Prefix is a prefix of \p Events.
bool isEventPrefix(const std::vector<Event> &Prefix,
                   const std::vector<Event> &Events);

} // namespace qcm

#endif // QCM_SEMANTICS_EVENT_H
