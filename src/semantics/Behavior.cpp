//===- semantics/Behavior.cpp ---------------------------------------------===//

#include "semantics/Behavior.h"

using namespace qcm;

std::string qcm::eventsToString(const std::vector<Event> &Events) {
  if (Events.empty())
    return "<no events>";
  std::string Text;
  for (size_t Idx = 0; Idx < Events.size(); ++Idx) {
    if (Idx)
      Text += ".";
    Text += Events[Idx].toString();
  }
  return Text;
}

bool qcm::isEventPrefix(const std::vector<Event> &Prefix,
                        const std::vector<Event> &Events) {
  if (Prefix.size() > Events.size())
    return false;
  for (size_t Idx = 0; Idx < Prefix.size(); ++Idx)
    if (!(Prefix[Idx] == Events[Idx]))
      return false;
  return true;
}

std::string qcm::behaviorKindName(Behavior::Kind Kind) {
  switch (Kind) {
  case Behavior::Kind::Terminated:
    return "term";
  case Behavior::Kind::Undefined:
    return "undef";
  case Behavior::Kind::OutOfMemory:
    return "partial(oom)";
  case Behavior::Kind::StepLimit:
    return "partial(step-limit)";
  }
  return "unknown";
}

std::string Behavior::toString() const {
  std::string Text = eventsToString(Events) + ", " +
                     behaviorKindName(BehaviorKind);
  if (!Reason.empty())
    Text += " [" + Reason + "]";
  return Text;
}
