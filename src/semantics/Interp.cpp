//===- semantics/Interp.cpp -----------------------------------------------===//
//
// The QIR execution engine. Step accounting mirrors the historical
// tree-walking interpreter exactly: fuel is checked (and one step charged)
// at every StmtStart instruction — the compiled image of each work-item pop
// the walker performed — and the OnInstr observer fires there when the
// instruction carries an AST origin. The reference walker lives in
// AstInterp.cpp; fuzz_test keeps the two engines in lockstep.
//
//===----------------------------------------------------------------------===//

#include "semantics/Interp.h"

#include "ir/Compile.h"
#include "memory/ModelRegistry.h"

#include <cassert>

using namespace qcm;

bool qcm::threadedDispatchCompiledIn() {
  return QCM_THREADED_DISPATCH_ACTIVE != 0;
}

Machine::Machine(const Program &Prog, std::unique_ptr<Memory> Mem,
                 InterpConfig Config)
    : Machine(qir::compileProgram(Prog), std::move(Mem), std::move(Config)) {}

Machine::Machine(std::shared_ptr<const qir::QirModule> Module,
                 std::unique_ptr<Memory> Mem, InterpConfig Config)
    : Module(std::move(Module)), Mem(std::move(Mem)),
      Config(std::move(Config)) {
  assert(this->Module && "machine requires a compiled module");
  assert(this->Mem && "machine requires a memory");
  HasObserver = static_cast<bool>(this->Config.OnInstr);
  PtrInit = initialValue(Type::Ptr);
  // Events is the only run-long accumulator without a natural size bound;
  // paper-scale programs emit a handful of I/O events, so one small up-front
  // reservation removes every regrowth from the common case.
  Events.reserve(16);
  // Thread the step counter into the memory's trace so every memory event
  // is tagged with the execution time at which it happened.
  this->Mem->trace().bindStepCounter(&Steps);
}

Machine::~Machine() = default;

void Machine::reset(std::shared_ptr<const qir::QirModule> NewModule,
                    InterpConfig NewConfig) {
  assert(NewModule && "machine requires a compiled module");
  Module = std::move(NewModule);
  Config = std::move(NewConfig);
  HasObserver = static_cast<bool>(Config.OnInstr);
  PtrInit = initialValue(Type::Ptr);
  // clear() keeps capacity: the frame stack, arenas, eval stack, and event
  // buffer a previous run grew are exactly the sizes the next run of the
  // same grid needs. TCache is intentionally untouched — its ensure() key
  // decides whether the old translations are still valid — but its
  // telemetry restarts, so a run's stats never include a predecessor's.
  Frames.clear();
  SlotArena.clear();
  HiddenArena.clear();
  Stack.clear();
  Top = 0;
  GlobalVals.clear();
  Handlers.clear();
  Events.clear();
  InputCursor = 0;
  Steps = 0;
  DStats = qir::DispatchStats();
  Started = false;
  GlobalsReady = false;
  PendingSignal.reset();
  FinalFault.reset();
  Finished = false;
  HitStepLimit = false;
  TimedOut = false;
  DeadlineArmed = false;
  // Re-arm the trace exactly as the constructor does; the model's typed
  // reset() cleared stats but deliberately left binding concerns to us.
  Mem->trace().bindStepCounter(&Steps);
}

Value Machine::initialValue(Type Ty) const {
  if (Ty == Type::Int)
    return Value::makeInt(0);
  // Pointer variables start as NULL: the integer 0 in a fully-concrete
  // value domain, the logical address (0, 0) elsewhere (Section 4).
  if (modelDescriptor(Mem->kind()).ValuesFullyConcrete)
    return Value::makeInt(0);
  return Value::null();
}

Outcome<Unit> Machine::setupGlobals() {
  assert(!GlobalsReady && "globals already set up");
  for (const GlobalDecl &G : Module->Source->Globals) {
    Outcome<Value> P = Mem->allocate(G.SizeWords);
    if (!P)
      return P.propagate<Unit>();
    GlobalVals.push_back(P.value());
  }
  GlobalsReady = true;
  return Outcome<Unit>::success(Unit{});
}

Outcome<Unit> Machine::start(const std::string &Entry,
                             std::vector<Value> Args) {
  assert(GlobalsReady && "setupGlobals() must run before start()");
  assert(!Started && "machine already started");
  auto It = Module->FunctionIndex.find(Entry);
  if (It == Module->FunctionIndex.end())
    return Outcome<Unit>::undefined("entry function '" + Entry +
                                    "' is not declared");
  const qir::QFunction &Fn = Module->Functions[It->second];
  if (Fn.IsExtern)
    return Outcome<Unit>::undefined("entry function '" + Entry +
                                    "' is extern");
  if (Fn.NumParams != Args.size())
    return Outcome<Unit>::undefined("entry function '" + Entry +
                                    "' called with wrong argument count");
  pushFrame(Fn, Args.data(), Args.size());
  Started = true;
  return Outcome<Unit>::success(Unit{});
}

void Machine::setExternalHandler(const std::string &Name,
                                 ExternalHandler Handler) {
  Handlers[Name] = std::move(Handler);
}

void Machine::setSlot(uint32_t Slot, Value V) {
  Frame &F = Frames.back();
  SlotArena[F.SlotBase + Slot] = V;
  if (Slot >= F.Fn->NumDeclaredSlots)
    HiddenArena[F.HiddenBase + (Slot - F.Fn->NumDeclaredSlots)] = 1;
}

Value Machine::globalValue(const std::string &Name) const {
  // First occurrence wins on duplicate names, like the walker's
  // Globals.emplace.
  for (size_t Idx = 0; Idx < Module->GlobalNames.size(); ++Idx)
    if (Module->GlobalNames[Idx] == Name)
      return GlobalVals[Idx];
  assert(false && "unknown global");
  return Value::makeInt(0);
}

std::optional<Value> Machine::readLocal(const std::string &Name) const {
  if (Frames.empty())
    return std::nullopt;
  const Frame &F = Frames.back();
  for (uint32_t S = 0; S < F.Fn->NumSlots; ++S) {
    if (F.Fn->SlotNames[S] != Name)
      continue;
    if (S >= F.Fn->NumDeclaredSlots &&
        !HiddenArena[F.HiddenBase + (S - F.Fn->NumDeclaredSlots)])
      return std::nullopt;
    return SlotArena[F.SlotBase + S];
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Binary operations (Section 4)
//===----------------------------------------------------------------------===//

Outcome<Value> Machine::evalBinary(BinaryOp Op, const Value &L,
                                   const Value &R) {
  // Integer/integer: ordinary machine arithmetic.
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    switch (Op) {
    case BinaryOp::Add:
      return Outcome<Value>::success(Value::makeInt(wrapAdd(A, B)));
    case BinaryOp::Sub:
      return Outcome<Value>::success(Value::makeInt(wrapSub(A, B)));
    case BinaryOp::Mul:
      return Outcome<Value>::success(Value::makeInt(wrapMul(A, B)));
    case BinaryOp::And:
      return Outcome<Value>::success(Value::makeInt(A & B));
    case BinaryOp::Eq:
      return Outcome<Value>::success(Value::makeInt(A == B ? 1 : 0));
    }
  }

  // The partial pointer rules of Section 4.
  if (L.isPtr() && R.isInt()) {
    const Ptr &P = L.ptr();
    Word A = R.intValue();
    switch (Op) {
    case BinaryOp::Add: // (p + a) => (l, i1 + i2)
      return Outcome<Value>::success(
          Value::makePtr(P.Block, wrapAdd(P.Offset, A)));
    case BinaryOp::Sub: // (p - a) => (l, i1 - i2)
      return Outcome<Value>::success(
          Value::makePtr(P.Block, wrapSub(P.Offset, A)));
    case BinaryOp::Eq:
      // Comparison of an address with NULL written as the integer 0 is
      // well-defined for valid addresses (CompCert-style; only reachable
      // under the Loose discipline).
      if (A == 0 && Mem->isValidAddress(P))
        return Outcome<Value>::success(Value::makeInt(0));
      return Outcome<Value>::undefined(
          "equality test between an address and a nonzero integer");
    case BinaryOp::Mul:
    case BinaryOp::And:
      return Outcome<Value>::undefined(
          "arithmetic '" + binaryOpSpelling(Op) + "' on a logical address");
    }
  }

  if (L.isInt() && R.isPtr()) {
    Word A = L.intValue();
    const Ptr &P = R.ptr();
    switch (Op) {
    case BinaryOp::Add: // (a + p) => (l, i1 + i2)
      return Outcome<Value>::success(
          Value::makePtr(P.Block, wrapAdd(A, P.Offset)));
    case BinaryOp::Eq:
      if (A == 0 && Mem->isValidAddress(P))
        return Outcome<Value>::success(Value::makeInt(0));
      return Outcome<Value>::undefined(
          "equality test between an integer and an address");
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::And:
      return Outcome<Value>::undefined(
          "arithmetic '" + binaryOpSpelling(Op) + "' on a logical address");
    }
  }

  // Pointer/pointer.
  const Ptr &P1 = L.ptr();
  const Ptr &P2 = R.ptr();
  switch (Op) {
  case BinaryOp::Sub: // (p1 - p2) => i1 - i2, same block only
    if (P1.Block == P2.Block)
      return Outcome<Value>::success(
          Value::makeInt(wrapSub(P1.Offset, P2.Offset)));
    return Outcome<Value>::undefined(
        "subtraction of addresses in different blocks");
  case BinaryOp::Eq:
    if (P1.Block == P2.Block)
      return Outcome<Value>::success(
          Value::makeInt(P1.Offset == P2.Offset ? 1 : 0));
    if (Mem->isValidAddress(P1) && Mem->isValidAddress(P2))
      return Outcome<Value>::success(Value::makeInt(0));
    return Outcome<Value>::undefined(
        "equality test involving an invalid address");
  case BinaryOp::Add:
  case BinaryOp::Mul:
  case BinaryOp::And:
    return Outcome<Value>::undefined(
        "arithmetic '" + binaryOpSpelling(Op) + "' on two logical addresses");
  }
  return Outcome<Value>::undefined("malformed binary operation");
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

bool Machine::fault(Fault F) {
  // The no-behavior/OOM (or undefined-behavior) transition is a trace event
  // in its own right: it is where a run's observable behavior gets cut off.
  Mem->trace().noteFault(F);
  FinalFault = F;
  Signal S;
  S.SignalKind = Signal::Kind::Faulted;
  S.FaultInfo = std::move(F);
  PendingSignal = std::move(S);
  return false;
}

bool Machine::exec(const qir::QInstr &I) {
  // The eval stack is a flat buffer cursor (see the Top member): pushFrame
  // reserved MaxEvalDepth headroom, so pushes and pops are unchecked.
  auto Pop = [this] { return Stack[--Top]; };
  auto Push = [this](const Value &V) { Stack[Top++] = V; };

  switch (I.Opcode) {
  case qir::Op::PushConst:
    Push(Module->ConstPool[I.A]);
    return true;

  case qir::Op::PushSlot: {
    Frame &F = Frames.back();
    if (I.A >= F.Fn->NumDeclaredSlots &&
        !HiddenArena[F.HiddenBase + (I.A - F.Fn->NumDeclaredSlots)])
      return fault(Fault::undefined("read of undeclared variable '" +
                                    F.Fn->SlotNames[I.A] + "'"));
    Push(SlotArena[F.SlotBase + I.A]);
    return true;
  }

  case qir::Op::PushGlobal:
    Push(GlobalVals[I.A]);
    return true;

  case qir::Op::Binary: {
    Value R = Pop();
    Value L = Pop();
    Outcome<Value> V = evalBinary(static_cast<BinaryOp>(I.Aux), L, R);
    if (!V)
      return fault(V.fault());
    Push(V.value());
    return true;
  }

  case qir::Op::Trap:
    return fault(Fault::undefined(Module->StringPool[I.A]));

  case qir::Op::StoreSlot:
    setSlot(I.A, Pop());
    return true;

  case qir::Op::Drop:
    --Top;
    return true;

  case qir::Op::LoadMem: {
    Value Addr = Pop();
    Outcome<Value> V = Mem->load(Addr);
    if (!V)
      return fault(V.fault());
    // Dynamic type checking (Section 6.1): the quasi-concrete model induces
    // a form of dynamic type checking — loading a logical address into an
    // int variable (or an integer into a ptr variable) is undefined
    // behavior. Not applicable in the concrete model, where every value is
    // an integer, nor under the Loose (CompCert-style) discipline. The
    // faulting condition was resolved at compile time into Aux; the message
    // is preformed in the string pool.
    if (Config.Discipline == TypeDiscipline::Static &&
        Mem->kind() != ModelKind::Concrete) {
      switch (static_cast<qir::DeclKind>(I.Aux)) {
      case qir::DeclKind::Hidden:
        return fault(Fault::undefined(Module->StringPool[I.B]));
      case qir::DeclKind::Int:
        if (V.value().isPtr())
          return fault(Fault::undefined(Module->StringPool[I.B]));
        break;
      case qir::DeclKind::Ptr:
        if (V.value().isInt())
          return fault(Fault::undefined(Module->StringPool[I.B]));
        break;
      }
    }
    setSlot(I.A, V.value());
    return true;
  }

  case qir::Op::StoreMem: {
    Value V = Pop();
    Value Addr = Pop();
    Outcome<Unit> Stored = Mem->store(Addr, V);
    if (!Stored)
      return fault(Stored.fault());
    return true;
  }

  case qir::Op::Malloc: {
    Value Size = Pop();
    if (!Size.isInt())
      return fault(Fault::undefined("malloc size is a logical address"));
    Outcome<Value> P = Mem->allocate(Size.intValue());
    if (!P)
      return fault(P.fault());
    if (I.A != qir::NoSlot)
      setSlot(I.A, P.value());
    return true;
  }

  case qir::Op::FreeMem: {
    Value P = Pop();
    Outcome<Unit> Freed = Mem->deallocate(P);
    if (!Freed)
      return fault(Freed.fault());
    return true;
  }

  case qir::Op::Cast: {
    Value V = Pop();
    Outcome<Value> Cast =
        I.Aux == 0 ? Mem->castPtrToInt(V) : Mem->castIntToPtr(V);
    if (!Cast)
      return fault(Cast.fault());
    if (I.A != qir::NoSlot)
      setSlot(I.A, Cast.value());
    return true;
  }

  case qir::Op::Input: {
    Word V = InputCursor < Config.InputTape.size()
                 ? Config.InputTape[InputCursor++]
                 : 0;
    Events.push_back(Event::input(V));
    if (I.A != qir::NoSlot)
      setSlot(I.A, Value::makeInt(V));
    return true;
  }

  case qir::Op::Output: {
    Value V = Pop();
    if (!V.isInt())
      return fault(Fault::undefined("output of a logical address"));
    Events.push_back(Event::output(V.intValue()));
    return true;
  }

  case qir::Op::Call:
    // The popped arguments are read in place from the stack buffer;
    // pushFrame copies them out before any reallocation.
    Top -= I.B;
    pushFrame(Module->Functions[I.A], Stack.data() + Top, I.B);
    return true;

  case qir::Op::CallExtern: {
    std::vector<Value> Args(Stack.begin() + (Top - I.B),
                            Stack.begin() + Top);
    Top -= I.B;
    const std::string &Callee = Module->StringPool[I.A];
    auto HandlerIt = Handlers.find(Callee);
    if (HandlerIt != Handlers.end()) {
      Outcome<Unit> R = HandlerIt->second(*this, Args);
      if (!R)
        return fault(R.fault());
      return true;
    }
    Signal S;
    S.SignalKind = Signal::Kind::ExternalCall;
    S.Callee = Callee;
    S.Args = std::move(Args);
    PendingSignal = std::move(S);
    return false;
  }

  case qir::Op::Jump:
    Frames.back().PC = I.A;
    return true;

  case qir::Op::JumpIfZero: {
    Value C = Pop();
    if (!C.isInt())
      return fault(Fault::undefined(Module->StringPool[I.B]));
    if (C.intValue() == 0)
      Frames.back().PC = I.A;
    return true;
  }

  case qir::Op::EnterSeq:
    return true;

  case qir::Op::Ret:
    popFrame();
    return true;
  }
  return fault(Fault::undefined("malformed instruction"));
}

bool Machine::typeChecksActive() const {
  return Config.Discipline == TypeDiscipline::Static &&
         Mem->kind() != ModelKind::Concrete;
}

bool Machine::wantThreaded() const {
  if (Config.Dispatch == DispatchMode::Switch)
    return false;
  // Deoptimization contract: every observation hook — the OnInstr
  // observer, a trace sink, a fault-injection decorator — fires from the
  // switch loop, which has carried them since the QIR refactor. The
  // threaded engine only ever runs hook-free executions, so the hooks
  // cannot drift between engines.
  if (HasObserver)
    return false;
  if (Mem->trace().sink())
    return false;
  if (Mem->underlying() != Mem.get())
    return false;
  if (Config.StepLimit - Steps < ThreadedStepMargin)
    return false;
  return true;
}

Signal Machine::run() {
  assert(Started && "run() before start()");
  if (PendingSignal)
    return *PendingSignal;
  // The deadline is armed on the first run() and survives external-call
  // round-trips: the budget covers the whole execution, not each resume.
  if (Config.WallTimeoutMs != 0 && !DeadlineArmed) {
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(Config.WallTimeoutMs);
    DeadlineArmed = true;
  }
#if QCM_THREADED_DISPATCH_ACTIVE
  if (wantThreaded())
    return runThreaded();
#endif
  return runSwitch();
}

Signal Machine::runSwitch() {
  const bool HasDeadline = Config.WallTimeoutMs != 0;
  while (true) {
    if (Frames.empty()) {
      Finished = true;
      Signal S;
      S.SignalKind = Signal::Kind::Finished;
      PendingSignal = S;
      return *PendingSignal;
    }
    Frame &F = Frames.back();
    const qir::QInstr &I = F.Fn->Code[F.PC];
    if (I.StmtStart) {
      // Statement boundary: the walker's work-item pop. Fuel is checked and
      // charged here and only here.
      if (Steps >= Config.StepLimit) {
        HitStepLimit = true;
        Signal S;
        S.SignalKind = Signal::Kind::StepLimitReached;
        PendingSignal = S;
        return *PendingSignal;
      }
      if (HasDeadline && (Steps & (WatchdogStride - 1)) == 0 &&
          std::chrono::steady_clock::now() >= Deadline) {
        // Same signal and behavior as fuel exhaustion (the partial event
        // prefix is all that was observed); timedOut() records the cause.
        TimedOut = true;
        HitStepLimit = true;
        Signal S;
        S.SignalKind = Signal::Kind::StepLimitReached;
        PendingSignal = S;
        return *PendingSignal;
      }
      ++Steps;
      if (HasObserver && I.Origin)
        Config.OnInstr(*I.Origin, static_cast<unsigned>(Frames.size()));
    }
    ++F.PC;
    if (!exec(I))
      return *PendingSignal;
  }
}

Signal Machine::finishExternalCall() {
  assert(PendingSignal &&
         PendingSignal->SignalKind == Signal::Kind::ExternalCall &&
         "finishExternalCall() without a pending external call");
  PendingSignal.reset();
  return run();
}

Behavior Machine::behavior() const {
  if (FinalFault) {
    if (FinalFault->isUndefined())
      return Behavior::undefined(Events, FinalFault->Reason);
    return Behavior::outOfMemory(Events, FinalFault->Reason);
  }
  if (Finished)
    return Behavior::terminated(Events);
  // Mid-execution (including fuel exhaustion): only the event prefix is
  // known.
  return Behavior::stepLimit(Events);
}
