//===- semantics/AstInterp.h - Reference tree-walking engine ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original small-step AST-walking interpreter, kept verbatim as the
/// executable specification of the Section 2 semantics. The production
/// Machine (Interp.h) executes compiled QIR; this engine re-walks the parse
/// tree on every run with string-keyed environments. It exists for two
/// purposes:
///
///  * differential testing — fuzz_test runs generated programs on both
///    engines and requires bit-identical Behaviors and step counts;
///  * benchmarking — bench_models_perf measures the QIR speedup against
///    this engine in the same build.
///
/// External handlers are not supported here: runs treat unhandled extern
/// calls as the do-nothing context, exactly like runProgram does when no
/// handler is registered.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SEMANTICS_ASTINTERP_H
#define QCM_SEMANTICS_ASTINTERP_H

#include "semantics/Runner.h"

namespace qcm {

/// The tree-walking machine; mirrors Machine's surface minus handlers.
class AstMachine {
public:
  AstMachine(const Program &Prog, std::unique_ptr<Memory> Mem,
             InterpConfig Config);
  ~AstMachine();

  AstMachine(const AstMachine &) = delete;
  AstMachine &operator=(const AstMachine &) = delete;

  Outcome<Unit> setupGlobals();
  Outcome<Unit> start(const std::string &Entry, std::vector<Value> Args);
  Signal run();
  Signal finishExternalCall();
  Behavior behavior() const;

  Memory &memory() { return *Mem; }
  const std::vector<Event> &events() const { return Events; }
  uint64_t stepsUsed() const { return Steps; }

private:
  struct Frame;

  bool stepOnce();
  Outcome<Value> evalExp(const Exp &E, const Frame &F);
  Outcome<Value> evalBinary(BinaryOp Op, const Value &L, const Value &R);
  Outcome<std::optional<Value>> evalRExp(const RExp &R, Frame &F);
  bool execInstr(const Instr &I);
  bool fault(Fault F);
  void pushFrame(const FunctionDecl &Fn, std::vector<Value> Args);
  Value initialValue(Type Ty) const;

  const Program &Prog;
  std::unique_ptr<Memory> Mem;
  InterpConfig Config;

  std::vector<Frame> Frames;
  std::map<std::string, Value> Globals;
  std::vector<Event> Events;
  size_t InputCursor = 0;
  uint64_t Steps = 0;

  bool Started = false;
  bool GlobalsReady = false;
  std::optional<Signal> PendingSignal;
  std::optional<Fault> FinalFault;
  bool Finished = false;
  bool HitStepLimit = false;
};

/// runProgram, but on the reference engine. Ignores Config.Handlers (extern
/// calls become the do-nothing context).
RunResult runAstProgram(const Program &Prog, const RunConfig &Config);

} // namespace qcm

#endif // QCM_SEMANTICS_ASTINTERP_H
