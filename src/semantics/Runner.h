//===- semantics/Runner.h - One-shot program execution ----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience layer for running a whole program under a chosen model and
/// observing its Behavior. Entry-point arguments are described by ArgSpecs
/// so that pointer arguments (ubiquitous in the paper's examples, which
/// return values through pointer parameters) can be materialized as fresh
/// blocks in whichever model is selected.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SEMANTICS_RUNNER_H
#define QCM_SEMANTICS_RUNNER_H

#include "memory/EagerQuasiMemory.h"
#include "memory/FaultInjection.h"
#include "memory/LogicalMemory.h"
#include "memory/Placement.h"
#include "semantics/Interp.h"

#include <functional>
#include <map>

namespace qcm {

/// Description of one entry-point argument.
struct ArgSpec {
  enum class Kind {
    /// A plain integer.
    Int,
    /// A pointer to a freshly allocated block of Size words, the first
    /// Init.size() of which are initialized with the given integers.
    FreshBlock,
  };

  Kind ArgKind = Kind::Int;
  Word IntValue = 0;
  Word Size = 1;
  std::vector<Word> Init;

  static ArgSpec intArg(Word V) {
    ArgSpec A;
    A.ArgKind = Kind::Int;
    A.IntValue = V;
    return A;
  }
  static ArgSpec freshBlock(Word Size, std::vector<Word> Init = {}) {
    ArgSpec A;
    A.ArgKind = Kind::FreshBlock;
    A.Size = Size;
    A.Init = std::move(Init);
    return A;
  }
};

/// Produces fresh placement oracles; invoked once per run.
using OracleFactory = std::function<std::unique_ptr<PlacementOracle>()>;

/// Everything needed to run a program once.
struct RunConfig {
  ModelKind Model = ModelKind::QuasiConcrete;
  MemoryConfig MemConfig;
  InterpConfig Interp;
  /// Cast behavior when Model == Logical.
  LogicalMemory::CastBehavior LogicalCasts =
      LogicalMemory::CastBehavior::Error;
  /// Placement oracle; null means first-fit.
  OracleFactory Oracle;
  /// Kind oracle when Model == EagerQuasi; null means all-logical.
  std::function<std::unique_ptr<KindOracle>()> Kinds;
  std::string Entry = "main";
  std::vector<ArgSpec> Args;
  std::map<std::string, ExternalHandler> Handlers;
  /// Optional memory-event sink, installed on the run's memory before any
  /// allocation happens (globals and arguments included). Non-owning; must
  /// outlive the run. Null (the default) keeps the fast no-sink path.
  MemTraceSink *TraceSink = nullptr;
  /// Deterministic exhaustion schedule (memory/FaultInjection.h). The empty
  /// default injects nothing and constructs no decorator, so ordinary runs
  /// keep the direct-model fast path. ShrinkAddressWords, when set,
  /// overrides MemConfig.AddressWords at memory construction.
  FaultPlan Inject;
};

/// Outcome of a run.
struct RunResult {
  Behavior Behav;
  uint64_t Steps = 0;
  /// Result of Memory::checkConsistency() after the run.
  std::optional<std::string> ConsistencyError;
  /// Aggregate memory-event statistics of the run (zeros when the library
  /// was built with QCM_TRACE_ENABLED=0).
  ModelStats Stats;
  /// True when the run stopped because InterpConfig.WallTimeoutMs elapsed.
  /// The behavior is Kind::StepLimit either way; this records the cause.
  bool TimedOut = false;
  /// Translation-cache and fusion telemetry of the run (all zeros when the
  /// run dispatched through the switch loop — observers, fault injection,
  /// tracing, or a QCM_THREADED_DISPATCH=0 build).
  qir::DispatchStats Dispatch;
  /// Process-isolation verdicting (refinement/ProcessPool.h). A cell whose
  /// worker died is retried; WorkerCrashes counts the deaths attributed to
  /// this cell, and Quarantined marks a cell abandoned after the retry
  /// budget — its Behav then carries the last death's description in Reason
  /// and is excluded from behavior sets. Both are journaled so a resumed
  /// run replays crash history instead of re-executing a killer cell.
  uint32_t WorkerCrashes = 0;
  bool Quarantined = false;
};

/// Builds a memory instance for \p Config.
std::unique_ptr<Memory> makeMemory(const RunConfig &Config);

/// Runs \p Prog once under \p Config (compiling it to QIR first; use
/// runCompiled to amortize compilation over many runs).
RunResult runProgram(const Program &Prog, const RunConfig &Config);

/// Runs an already-compiled program once under \p Config. This is the
/// repeated-execution fast path: the refinement explorer compiles each
/// (program, context) pair once and calls this per oracle and input tape.
RunResult runCompiled(const std::shared_ptr<const qir::QirModule> &Module,
                      const RunConfig &Config);

/// Reusable execution state: one Machine (and the Memory it owns) kept
/// alive across runs. run() is observationally identical to runCompiled()
/// — same behaviors, step counts, fault messages, statistics — but when
/// the memory-shaping part of the configuration (model kind and address
/// space) matches the previous run it resets and reuses the existing
/// machine and memory storage instead of reallocating them. Oracles are
/// always taken fresh from the config's factories, so decision streams
/// rewind exactly as a fresh construction would.
///
/// Intended use is one ExecState per exploration worker slot (see
/// refinement/Exploration.h): the grid items a worker executes share their
/// model and address space, so the slab chunks, block tables, and frame
/// stacks reach steady-state capacity after the first item and every later
/// item runs allocation-free at the storage layer.
///
/// Not thread-safe; confine each instance to one thread at a time.
class ExecState {
public:
  /// Runs \p Module under \p Config, reusing the previous run's machine
  /// and memory when compatible.
  RunResult run(const std::shared_ptr<const qir::QirModule> &Module,
                const RunConfig &Config);

private:
  std::unique_ptr<Machine> M;
  /// Shape of the run M was last configured for; reuse requires a match
  /// (everything else — casts, oracles, tapes, handlers — is re-applied
  /// by reset). The fault plan is part of the shape: it decides whether
  /// the memory is decorated at all.
  ModelKind Model = ModelKind::QuasiConcrete;
  MemoryConfig MemCfg;
  FaultPlan Inject;
};

} // namespace qcm

#endif // QCM_SEMANTICS_RUNNER_H
