//===- semantics/ResultCodec.cpp ------------------------------------------===//

#include "semantics/ResultCodec.h"

#include "support/Telemetry.h"

using namespace qcm;

namespace {

bool parseUintText(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    if (Value > (UINT64_MAX - 9) / 10)
      return false;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = Value;
  return true;
}

/// Inverse of qcm::jsonEscape for the escapes it produces.
std::string jsonUnescape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (C != '\\' || I + 1 >= Text.size()) {
      Out += C;
      continue;
    }
    char Next = Text[++I];
    switch (Next) {
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case 't':
      Out += '\t';
      break;
    case 'u': {
      if (I + 4 < Text.size()) {
        unsigned V = 0;
        for (int D = 0; D < 4; ++D) {
          char H = Text[I + 1 + D];
          V = V * 16 +
              (H >= '0' && H <= '9'   ? unsigned(H - '0')
               : H >= 'a' && H <= 'f' ? unsigned(H - 'a' + 10)
               : H >= 'A' && H <= 'F' ? unsigned(H - 'A' + 10)
                                      : 0);
        }
        Out += static_cast<char>(V);
        I += 4;
      }
      break;
    }
    default:
      Out += Next; // '\\' and '"'
    }
  }
  return Out;
}

const char *behaviorKindToken(Behavior::Kind Kind) {
  switch (Kind) {
  case Behavior::Kind::Terminated:
    return "term";
  case Behavior::Kind::Undefined:
    return "undef";
  case Behavior::Kind::OutOfMemory:
    return "oom";
  case Behavior::Kind::StepLimit:
    return "steplimit";
  }
  return "term";
}

bool behaviorKindFromToken(const std::string &Token, Behavior::Kind &Kind) {
  if (Token == "term")
    Kind = Behavior::Kind::Terminated;
  else if (Token == "undef")
    Kind = Behavior::Kind::Undefined;
  else if (Token == "oom")
    Kind = Behavior::Kind::OutOfMemory;
  else if (Token == "steplimit")
    Kind = Behavior::Kind::StepLimit;
  else
    return false;
  return true;
}

/// Events as "o5.i3.o7"; round-trips through parseEventsToken.
std::string eventsToken(const std::vector<Event> &Events) {
  std::string Text;
  for (const Event &E : Events) {
    if (!Text.empty())
      Text += '.';
    Text += E.EventKind == Event::Kind::Input ? 'i' : 'o';
    Text += std::to_string(static_cast<uint64_t>(E.Value));
  }
  return Text;
}

bool parseEventsToken(const std::string &Text, std::vector<Event> &Events) {
  if (Text.empty())
    return true;
  std::string Tok;
  for (char C : Text + ".") {
    if (C != '.') {
      Tok += C;
      continue;
    }
    if (Tok.size() < 2 || (Tok[0] != 'i' && Tok[0] != 'o'))
      return false;
    uint64_t V = 0;
    if (!parseUintText(Tok.substr(1), V))
      return false;
    Events.push_back(Tok[0] == 'i' ? Event::input(static_cast<Word>(V))
                                   : Event::output(static_cast<Word>(V)));
    Tok.clear();
  }
  return true;
}

/// ModelStats as a fixed-order comma list; must round-trip exactly for the
/// resumed report's AggregateStats to match byte for byte.
std::string statsToken(const ModelStats &S) {
  const uint64_t Fields[] = {S.Allocations,    S.AllocationFailures,
                             S.Frees,          S.Loads,
                             S.Stores,         S.CastsToInt,
                             S.CastsToPtr,     S.Realizations,
                             S.RealizationFailures, S.UndefinedFaults,
                             S.NoBehaviorFaults,    S.LiveBlocks,
                             S.PeakLiveBlocks, S.RealizedBytes,
                             S.PeakRealizedBytes};
  std::string Text;
  for (uint64_t F : Fields) {
    if (!Text.empty())
      Text += ',';
    Text += std::to_string(F);
  }
  return Text;
}

bool parseStatsToken(const std::string &Text, ModelStats &S) {
  uint64_t *Fields[] = {&S.Allocations,    &S.AllocationFailures,
                        &S.Frees,          &S.Loads,
                        &S.Stores,         &S.CastsToInt,
                        &S.CastsToPtr,     &S.Realizations,
                        &S.RealizationFailures, &S.UndefinedFaults,
                        &S.NoBehaviorFaults,    &S.LiveBlocks,
                        &S.PeakLiveBlocks, &S.RealizedBytes,
                        &S.PeakRealizedBytes};
  size_t Idx = 0;
  std::string Tok;
  for (char C : Text + ",") {
    if (C != ',') {
      Tok += C;
      continue;
    }
    if (Idx >= std::size(Fields) || !parseUintText(Tok, *Fields[Idx]))
      return false;
    ++Idx;
    Tok.clear();
  }
  return Idx == std::size(Fields);
}

} // namespace

bool qcm::jsonExtractField(const std::string &Line, const std::string &Key,
                           std::string &Raw, bool &IsString) {
  std::string Needle = "\"" + Key + "\":";
  size_t Pos = Line.find(Needle);
  if (Pos == std::string::npos)
    return false;
  Pos += Needle.size();
  if (Pos >= Line.size())
    return false;
  if (Line[Pos] == '"') {
    IsString = true;
    std::string Value;
    for (size_t I = Pos + 1; I < Line.size(); ++I) {
      if (Line[I] == '\\' && I + 1 < Line.size()) {
        Value += Line[I];
        Value += Line[I + 1];
        ++I;
        continue;
      }
      if (Line[I] == '"') {
        Raw = jsonUnescape(Value);
        return true;
      }
      Value += Line[I];
    }
    return false; // unterminated string: truncated line
  }
  IsString = false;
  size_t End = Pos;
  while (End < Line.size() && Line[End] != ',' && Line[End] != '}')
    ++End;
  if (End == Line.size())
    return false; // truncated line
  Raw = Line.substr(Pos, End - Pos);
  return true;
}

std::string qcm::encodeRunResult(size_t Index, const RunResult &R) {
  JsonObject Obj;
  Obj.field("cell", static_cast<uint64_t>(Index))
      .field("kind", behaviorKindToken(R.Behav.BehaviorKind))
      .field("events", eventsToken(R.Behav.Events))
      .field("reason", R.Behav.Reason)
      .field("steps", R.Steps)
      .fieldBool("timedout", R.TimedOut);
  if (R.ConsistencyError)
    Obj.field("consistency", *R.ConsistencyError);
  Obj.field("stats", statsToken(R.Stats));
  // Isolation fields only when set: a crash-free run's lines are identical
  // to a pre-isolation journal's, and thread-backend resumes of process-
  // backend journals (and vice versa) parse either way.
  if (R.WorkerCrashes)
    Obj.field("crashes", static_cast<uint64_t>(R.WorkerCrashes));
  if (R.Quarantined)
    Obj.fieldBool("quarantined", true);
  return Obj.str();
}

bool qcm::decodeRunResult(const std::string &Line, size_t &Index,
                          RunResult &R) {
  std::string Raw;
  bool IsString = false;
  uint64_t Cell = 0;
  if (!jsonExtractField(Line, "cell", Raw, IsString) || IsString ||
      !parseUintText(Raw, Cell))
    return false;
  Index = static_cast<size_t>(Cell);
  if (!jsonExtractField(Line, "kind", Raw, IsString) || !IsString ||
      !behaviorKindFromToken(Raw, R.Behav.BehaviorKind))
    return false;
  if (!jsonExtractField(Line, "events", Raw, IsString) || !IsString ||
      !parseEventsToken(Raw, R.Behav.Events))
    return false;
  if (!jsonExtractField(Line, "reason", Raw, IsString) || !IsString)
    return false;
  R.Behav.Reason = Raw;
  if (!jsonExtractField(Line, "steps", Raw, IsString) || IsString ||
      !parseUintText(Raw, R.Steps))
    return false;
  if (!jsonExtractField(Line, "timedout", Raw, IsString) || IsString)
    return false;
  R.TimedOut = Raw == "true";
  if (jsonExtractField(Line, "consistency", Raw, IsString) && IsString)
    R.ConsistencyError = Raw;
  if (!jsonExtractField(Line, "stats", Raw, IsString) || !IsString ||
      !parseStatsToken(Raw, R.Stats))
    return false;
  if (jsonExtractField(Line, "crashes", Raw, IsString) && !IsString) {
    uint64_t Crashes = 0;
    if (!parseUintText(Raw, Crashes))
      return false;
    R.WorkerCrashes = static_cast<uint32_t>(Crashes);
  }
  if (jsonExtractField(Line, "quarantined", Raw, IsString) && !IsString)
    R.Quarantined = Raw == "true";
  return true;
}
