//===- semantics/Runner.cpp -----------------------------------------------===//

#include "semantics/Runner.h"

#include "ir/Compile.h"
#include "memory/ModelRegistry.h"
#include "support/Profiler.h"

using namespace qcm;

namespace {

/// Lowers a RunConfig to the registry's model-construction inputs: applies
/// the fault plan's address-space shrink and draws fresh oracles from the
/// factories (null factories stay null — "model default" on construction,
/// "keep and rewind" on reset).
ModelMakeConfig makeModelConfig(const RunConfig &Config) {
  ModelMakeConfig C;
  C.MemCfg = Config.MemConfig;
  if (Config.Inject.ShrinkAddressWords)
    C.MemCfg.AddressWords = *Config.Inject.ShrinkAddressWords;
  if (Config.Oracle)
    C.Oracle = Config.Oracle();
  if (Config.Kinds)
    C.Kinds = Config.Kinds();
  C.LogicalCasts = Config.LogicalCasts;
  return C;
}

} // namespace

std::unique_ptr<Memory> qcm::makeMemory(const RunConfig &Config) {
  std::unique_ptr<Memory> Mem =
      modelDescriptor(Config.Model).Make(makeModelConfig(Config));
  return wrapWithFaultInjection(std::move(Mem), Config.Inject);
}

namespace {

/// Materializes one argument, allocating fresh blocks as needed. Returns a
/// faulting outcome if allocation or initialization fails (possible in a
/// tiny concrete memory).
Outcome<Value> materializeArg(const ArgSpec &Spec, Memory &Mem) {
  if (Spec.ArgKind == ArgSpec::Kind::Int)
    return Outcome<Value>::success(Value::makeInt(Spec.IntValue));
  Outcome<Value> P = Mem.allocate(Spec.Size);
  if (!P)
    return P;
  for (size_t Idx = 0; Idx < Spec.Init.size(); ++Idx) {
    // Address of the Idx-th word: base pointer plus offset, formed in the
    // model's own value domain.
    Value Slot = P.value().isPtr()
                     ? Value::makePtr(P.value().ptr().Block,
                                      P.value().ptr().Offset +
                                          static_cast<Word>(Idx))
                     : Value::makeInt(P.value().intValue() +
                                      static_cast<Word>(Idx));
    Outcome<Unit> Stored = Mem.store(Slot, Value::makeInt(Spec.Init[Idx]));
    if (!Stored)
      return Stored.propagate<Value>();
  }
  return P;
}

/// Resets an existing memory instance to the fresh state \p Config
/// describes, through the registry's typed Reset hook. The descriptor's
/// static_cast is safe because the caller only resets a memory it built
/// for the same ModelKind. Oracles come fresh from the factories (null
/// factories keep the model's current oracle and rewind it).
void resetModelMemory(Memory &Wrapped, const RunConfig &Config) {
  // A fault-injecting decorator sits in front of the model when the run
  // carries a plan; rewind its counters and reach through to the model's
  // typed reset() (underlying() is the identity on undecorated models, so
  // a non-identity underlying() identifies the decorator without RTTI).
  if (Wrapped.underlying() != &Wrapped)
    static_cast<FaultInjectingMemory &>(Wrapped).rewind();
  modelDescriptor(Config.Model)
      .Reset(*Wrapped.underlying(), makeModelConfig(Config));
}

/// The shared run body: \p M is fully reset (fresh or reused) over the
/// run's module; this installs the sink and handlers, materializes globals
/// and arguments, and drives the machine to completion.
RunResult executeConfigured(Machine &M, const RunConfig &Config) {
  // Unconditional: a reused memory may still carry the previous run's
  // sink, and null must clear it.
  M.memory().trace().setSink(Config.TraceSink);
  for (const auto &[Name, Handler] : Config.Handlers)
    M.setExternalHandler(Name, Handler);

  RunResult Result;
  auto FinishWithFault = [&](const Fault &F) {
    // Pre-run faults (global/argument materialization) never pass through
    // Machine::fault, so record the transition here.
    M.memory().trace().noteFault(F);
    Result.Behav = F.isUndefined()
                       ? Behavior::undefined(M.events(), F.Reason)
                       : Behavior::outOfMemory(M.events(), F.Reason);
    Result.Steps = M.stepsUsed();
    Result.ConsistencyError = M.memory().checkConsistency();
    Result.Stats = M.memory().trace().stats();
    Result.TimedOut = M.timedOut();
    Result.Dispatch = M.dispatchStats();
    return Result;
  };

  if (Outcome<Unit> G = M.setupGlobals(); !G)
    return FinishWithFault(G.fault());

  std::vector<Value> Args;
  for (const ArgSpec &Spec : Config.Args) {
    Outcome<Value> V = materializeArg(Spec, M.memory());
    if (!V)
      return FinishWithFault(V.fault());
    Args.push_back(V.value());
  }

  if (Outcome<Unit> S = M.start(Config.Entry, std::move(Args)); !S)
    return FinishWithFault(S.fault());

  Signal Sig = M.run();
  // Unhandled external calls indicate a misconfigured run: treat the call
  // as having no observable effect and continue, which matches the paper's
  // convention that unknown functions synchronize but are otherwise
  // arbitrary — the "do nothing" context.
  while (Sig.SignalKind == Signal::Kind::ExternalCall)
    Sig = M.finishExternalCall();

  Result.Behav = M.behavior();
  Result.Steps = M.stepsUsed();
  Result.ConsistencyError = M.memory().checkConsistency();
  Result.Stats = M.memory().trace().stats();
  Result.TimedOut = M.timedOut();
  Result.Dispatch = M.dispatchStats();
  return Result;
}

} // namespace

RunResult qcm::runProgram(const Program &Prog, const RunConfig &Config) {
  return runCompiled(qir::compileProgram(Prog), Config);
}

RunResult
qcm::runCompiled(const std::shared_ptr<const qir::QirModule> &Module,
                 const RunConfig &Config) {
  // The grid hot path (ExecState::run) is covered by the explorer's "cell"
  // spans; this one-shot entry gets its own so qcm-run profiles show the
  // execution proper next to parse/typecheck/compile.
  prof::Span Span("run", "exec");
  Span.arg("model", modelKindName(Config.Model));
  Machine M(Module, makeMemory(Config), Config.Interp);
  RunResult Result = executeConfigured(M, Config);
  Span.arg("outcome", behaviorKindName(Result.Behav.BehaviorKind));
  if (Result.TimedOut)
    Span.argBool("timed_out", true);
  return Result;
}

RunResult ExecState::run(const std::shared_ptr<const qir::QirModule> &Module,
                         const RunConfig &Config) {
  // Reuse needs the same model kind, address space, and fault plan: all
  // three are fixed at memory construction (the plan decides whether a
  // decorator wraps the model and what its schedule is). Everything else
  // (cast behavior, oracles, tapes, handlers, interpreter config) is
  // re-applied by the resets below.
  const bool Reusable = M && Model == Config.Model &&
                        MemCfg.AddressWords == Config.MemConfig.AddressWords &&
                        Inject == Config.Inject;
  if (Reusable) {
    resetModelMemory(M->memory(), Config);
    M->reset(Module, Config.Interp);
  } else {
    M = std::make_unique<Machine>(Module, makeMemory(Config), Config.Interp);
    Model = Config.Model;
    MemCfg = Config.MemConfig;
    Inject = Config.Inject;
  }
  return executeConfigured(*M, Config);
}
