//===- semantics/Behavior.h - Program behaviors -----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behaviors in the sense of Section 2.3. A behavior is an event sequence
/// together with how the execution ended:
///
/// 1. a terminating execution: e1...en, term;
/// 2. hitting undefined behavior, which stands for the set of all behaviors
///    extending the events produced so far;
/// 3. out of memory: e1...en, partial (CompCertTSO-style "no behavior"; only
///    the event prefix is observed);
/// 4. exhaustion of the step budget — our finite approximation of the
///    paper's diverging executions, treated like a partial behavior by the
///    refinement checker and flagged as approximate.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SEMANTICS_BEHAVIOR_H
#define QCM_SEMANTICS_BEHAVIOR_H

#include "semantics/Event.h"

#include <string>
#include <vector>

namespace qcm {

/// One observed behavior of one execution.
struct Behavior {
  enum class Kind {
    /// The program ran to completion: e1...en, term.
    Terminated,
    /// The execution hit undefined behavior after producing the events;
    /// denotes every behavior extending them.
    Undefined,
    /// The execution ran out of concrete address space: e1...en, partial.
    OutOfMemory,
    /// The step budget was exhausted; approximates divergence (e1...en,
    /// nonterm or longer executions).
    StepLimit,
  };

  Kind BehaviorKind = Kind::Terminated;
  std::vector<Event> Events;
  /// Diagnostic detail for Undefined / OutOfMemory.
  std::string Reason;

  static Behavior terminated(std::vector<Event> Events) {
    return Behavior{Kind::Terminated, std::move(Events), ""};
  }
  static Behavior undefined(std::vector<Event> Events, std::string Reason) {
    return Behavior{Kind::Undefined, std::move(Events), std::move(Reason)};
  }
  static Behavior outOfMemory(std::vector<Event> Events, std::string Reason) {
    return Behavior{Kind::OutOfMemory, std::move(Events), std::move(Reason)};
  }
  static Behavior stepLimit(std::vector<Event> Events) {
    return Behavior{Kind::StepLimit, std::move(Events), ""};
  }

  /// Equality ignores the diagnostic Reason: two behaviors are the same
  /// observation if they agree on kind and events.
  friend bool operator==(const Behavior &A, const Behavior &B) {
    return A.BehaviorKind == B.BehaviorKind && A.Events == B.Events;
  }

  std::string toString() const;
};

std::string behaviorKindName(Behavior::Kind Kind);

} // namespace qcm

#endif // QCM_SEMANTICS_BEHAVIOR_H
