//===- semantics/Interp.h - Small-step interpreter --------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational semantics of the Section 2 language, written against the
/// abstract Memory interface so the same program runs under all three
/// models. The interpreter is a small-step machine: external (unknown)
/// function calls surface as control points, which is what lets the
/// simulation checker of Section 5 synchronize the source and target
/// executions at unknown calls.
///
/// Since the QIR refactor the machine executes compiled bytecode
/// (ir/Qir.h) rather than re-walking the AST: programs are lowered once
/// (ir/Compile.h) and the module is reused across runs — construct with a
/// shared module to skip recompilation. Observable semantics, step counts,
/// fault messages, and the OnInstr observer are identical to the
/// tree-walking engine, which survives as semantics/AstInterp.h and is
/// cross-checked differentially in fuzz_test.
///
/// Binary operations follow the type-directed semantics of Section 4; loads
/// perform the dynamic type checking of Section 6.1 under the Static
/// discipline. The Loose discipline reproduces CompCert's treatment
/// (Section 2.2): casts are value-transparent and logical addresses may end
/// up in integer variables, where partial arithmetic applies.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SEMANTICS_INTERP_H
#define QCM_SEMANTICS_INTERP_H

#include "ir/Qir.h"
#include "lang/Ast.h"
#include "memory/Memory.h"
#include "semantics/Behavior.h"

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qcm {

class Machine;

/// How strictly values are tied to static types; see the file comment.
enum class TypeDiscipline {
  /// The paper's discipline (Sections 3.5, 6.1): integer variables contain
  /// only integers; violations detected at loads are undefined behavior.
  Static,
  /// CompCert-style: any value may inhabit any variable; operations are
  /// partial on logical addresses. Used to reproduce the Figure 4
  /// comparison.
  Loose,
};

/// Host implementation of an extern function; models one concrete context
/// from the set the paper quantifies over. May inspect and mutate memory
/// through the machine. A faulting outcome faults the whole execution.
using ExternalHandler =
    std::function<Outcome<Unit>(Machine &M, const std::vector<Value> &Args)>;

/// Interpreter configuration.
struct InterpConfig {
  TypeDiscipline Discipline = TypeDiscipline::Static;
  /// Fuel; exhausting it yields Behavior::Kind::StepLimit.
  uint64_t StepLimit = 1'000'000;
  /// Wall-clock watchdog in milliseconds; 0 (the default) means unlimited.
  /// The deadline is armed when run() first executes and polled every few
  /// thousand statements, so exceeding it surfaces as StepLimitReached —
  /// the same partial-prefix behavior as fuel exhaustion — with
  /// Machine::timedOut() distinguishing the cause out-of-band.
  uint64_t WallTimeoutMs = 0;
  /// Values returned by successive input() operations; exhaustion yields 0.
  std::vector<Word> InputTape;
  /// Observer invoked before each executed instruction, with the current
  /// call depth; used by tracing tools. Null (the default) costs nothing:
  /// the machine latches its presence once, so the untraced execution loop
  /// pays a single predictable branch rather than a std::function test per
  /// instruction.
  std::function<void(const Instr &, unsigned Depth)> OnInstr;
};

/// What run() stopped on.
struct Signal {
  enum class Kind {
    /// The program finished normally.
    Finished,
    /// Execution faulted (undefined behavior or out of memory).
    Faulted,
    /// The step budget was exhausted.
    StepLimitReached,
    /// An extern function without a registered handler was called; the
    /// driver must act and then call finishExternalCall().
    ExternalCall,
  };

  Kind SignalKind = Kind::Finished;
  Fault FaultInfo = Fault::undefined("");            // Faulted
  std::string Callee;                                // ExternalCall
  std::vector<Value> Args;                           // ExternalCall
};

/// The small-step machine.
class Machine {
public:
  /// Creates a machine over \p Prog (which must outlive the machine and be
  /// type checked under the Static discipline) using \p Mem. Compiles the
  /// program privately; prefer the module overload when executing the same
  /// program repeatedly.
  Machine(const Program &Prog, std::unique_ptr<Memory> Mem,
          InterpConfig Config);

  /// Creates a machine over an already-compiled \p Module (whose source
  /// Program must outlive the machine). The module is shared: any number of
  /// concurrent machines may execute it.
  Machine(std::shared_ptr<const qir::QirModule> Module,
          std::unique_ptr<Memory> Mem, InterpConfig Config);
  ~Machine();

  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  /// Reset-and-reuse: returns the machine to its just-constructed state
  /// over \p Module and \p Config, keeping the Memory instance and the
  /// capacity of all run-state vectors. The memory's *contents* are not
  /// touched — a caller reusing a machine must first reset the model
  /// through its typed reset() (see ExecState in semantics/Runner.h),
  /// which is what makes a reused machine observationally identical to a
  /// freshly constructed one.
  void reset(std::shared_ptr<const qir::QirModule> Module,
             InterpConfig Config);

  /// Allocates global blocks. Must be called once, before start().
  Outcome<Unit> setupGlobals();

  /// Pushes the entry frame for \p Entry with arguments \p Args.
  Outcome<Unit> start(const std::string &Entry, std::vector<Value> Args);

  /// Registers \p Handler for calls to extern function \p Name; such calls
  /// are then resolved inside run() instead of surfacing as signals.
  void setExternalHandler(const std::string &Name, ExternalHandler Handler);

  /// Runs until completion, fault, fuel exhaustion, or an unhandled extern
  /// call.
  Signal run();

  /// Resumes after the driver handled an ExternalCall signal.
  Signal finishExternalCall();

  /// The behavior of the execution as observed so far; meaningful once
  /// run() returned Finished, Faulted, or StepLimitReached.
  Behavior behavior() const;

  Memory &memory() { return *Mem; }
  const Memory &memory() const { return *Mem; }
  const Program &program() const { return *Module->Source; }
  const qir::QirModule &module() const { return *Module; }
  const std::vector<Event> &events() const { return Events; }
  uint64_t stepsUsed() const { return Steps; }

  /// True when the last run() stopped because Config.WallTimeoutMs elapsed.
  /// The behavior is still Kind::StepLimit — a timeout observes the same
  /// partial event prefix as fuel exhaustion — this only records the cause.
  bool timedOut() const { return TimedOut; }

  /// The pointer value of global \p Name; setupGlobals() must have run.
  Value globalValue(const std::string &Name) const;

  /// Reads a variable of the innermost frame; test/checker convenience.
  std::optional<Value> readLocal(const std::string &Name) const;

  /// Appends an output event; lets external handlers (contexts) perform
  /// observable I/O.
  void emitOutput(Word V) { Events.push_back(Event::output(V)); }

private:
  struct Frame;

  Outcome<Value> evalBinary(BinaryOp Op, const Value &L, const Value &R);

  /// Executes one instruction; returns true to continue, false when a
  /// signal in PendingSignal must surface.
  bool exec(const qir::QInstr &I);

  /// Routes a fault into PendingSignal; always returns false.
  bool fault(Fault F);

  /// Pushes a call frame for compiled function \p Fn.
  void pushFrame(const qir::QFunction &Fn, std::vector<Value> Args);

  /// Writes \p V to \p Slot of the innermost frame, marking hidden slots
  /// initialized.
  void setSlot(uint32_t Slot, Value V);

  /// Initial value for a variable of type \p Ty under the current model.
  Value initialValue(Type Ty) const;

  std::shared_ptr<const qir::QirModule> Module;
  std::unique_ptr<Memory> Mem;
  InterpConfig Config;
  /// Latched Config.OnInstr presence (hoisted out of the execution loop).
  bool HasObserver = false;

  std::vector<Frame> Frames;
  std::vector<Value> Stack; ///< Eval stack; empty at statement boundaries.
  std::vector<Value> GlobalVals;
  std::map<std::string, ExternalHandler> Handlers;
  std::vector<Event> Events;
  size_t InputCursor = 0;
  uint64_t Steps = 0;

  bool Started = false;
  bool GlobalsReady = false;
  std::optional<Signal> PendingSignal;
  std::optional<Fault> FinalFault;
  bool Finished = false;
  bool HitStepLimit = false;

  /// Watchdog state: the deadline is computed on the first run() after
  /// construction/reset (not at configuration time, so queued work does not
  /// eat into an item's budget) and polled every WatchdogStride statements.
  bool TimedOut = false;
  bool DeadlineArmed = false;
  std::chrono::steady_clock::time_point Deadline;
};

} // namespace qcm

#endif // QCM_SEMANTICS_INTERP_H
