//===- semantics/Interp.h - Small-step interpreter --------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational semantics of the Section 2 language, written against the
/// abstract Memory interface so the same program runs under all three
/// models. The interpreter is a small-step machine: external (unknown)
/// function calls surface as control points, which is what lets the
/// simulation checker of Section 5 synchronize the source and target
/// executions at unknown calls.
///
/// Since the QIR refactor the machine executes compiled bytecode
/// (ir/Qir.h) rather than re-walking the AST: programs are lowered once
/// (ir/Compile.h) and the module is reused across runs — construct with a
/// shared module to skip recompilation. Observable semantics, step counts,
/// fault messages, and the OnInstr observer are identical to the
/// tree-walking engine, which survives as semantics/AstInterp.h and is
/// cross-checked differentially in fuzz_test.
///
/// Binary operations follow the type-directed semantics of Section 4; loads
/// perform the dynamic type checking of Section 6.1 under the Static
/// discipline. The Loose discipline reproduces CompCert's treatment
/// (Section 2.2): casts are value-transparent and logical addresses may end
/// up in integer variables, where partial arithmetic applies.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_SEMANTICS_INTERP_H
#define QCM_SEMANTICS_INTERP_H

#include "ir/Decoded.h"
#include "ir/Qir.h"
#include "lang/Ast.h"
#include "memory/Memory.h"
#include "semantics/Behavior.h"

#include <cassert>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

/// Build-time switch for the direct-threaded (computed-goto) dispatch
/// engine. Defaults to on; configure with -DQCM_THREADED_DISPATCH=0 (the
/// CMake option of the same name) to build the switch loop only. The
/// computed-goto extension needs GCC or Clang; other compilers silently get
/// the switch loop regardless of the setting.
#ifndef QCM_THREADED_DISPATCH
#define QCM_THREADED_DISPATCH 1
#endif
#if QCM_THREADED_DISPATCH && (defined(__GNUC__) || defined(__clang__))
#define QCM_THREADED_DISPATCH_ACTIVE 1
#else
#define QCM_THREADED_DISPATCH_ACTIVE 0
#endif

namespace qcm {

class Machine;

/// True when this binary contains the computed-goto engine (compile-time
/// fact; lets tests and tools report which engines a build can compare).
bool threadedDispatchCompiledIn();

/// Which execution loop run() uses.
enum class DispatchMode {
  /// Direct-threaded dispatch whenever it is compiled in and the run has no
  /// observers attached (no OnInstr callback, no trace sink, no
  /// fault-injection decorator, step budget not near exhaustion); the
  /// switch loop otherwise. The two loops are observationally identical —
  /// the deopt exists so every hook fires from the one loop that has
  /// always carried hooks.
  Auto,
  /// Always the portable switch loop.
  Switch,
};

/// How strictly values are tied to static types; see the file comment.
enum class TypeDiscipline {
  /// The paper's discipline (Sections 3.5, 6.1): integer variables contain
  /// only integers; violations detected at loads are undefined behavior.
  Static,
  /// CompCert-style: any value may inhabit any variable; operations are
  /// partial on logical addresses. Used to reproduce the Figure 4
  /// comparison.
  Loose,
};

/// Host implementation of an extern function; models one concrete context
/// from the set the paper quantifies over. May inspect and mutate memory
/// through the machine. A faulting outcome faults the whole execution.
using ExternalHandler =
    std::function<Outcome<Unit>(Machine &M, const std::vector<Value> &Args)>;

/// Interpreter configuration.
struct InterpConfig {
  TypeDiscipline Discipline = TypeDiscipline::Static;
  /// Fuel; exhausting it yields Behavior::Kind::StepLimit.
  uint64_t StepLimit = 1'000'000;
  /// Wall-clock watchdog in milliseconds; 0 (the default) means unlimited.
  /// The deadline is armed when run() first executes and polled every few
  /// thousand statements, so exceeding it surfaces as StepLimitReached —
  /// the same partial-prefix behavior as fuel exhaustion — with
  /// Machine::timedOut() distinguishing the cause out-of-band.
  uint64_t WallTimeoutMs = 0;
  /// Values returned by successive input() operations; exhaustion yields 0.
  std::vector<Word> InputTape;
  /// Observer invoked before each executed instruction, with the current
  /// call depth; used by tracing tools. Null (the default) costs nothing:
  /// the machine latches its presence once, so the untraced execution loop
  /// pays a single predictable branch rather than a std::function test per
  /// instruction.
  std::function<void(const Instr &, unsigned Depth)> OnInstr;
  /// Dispatch strategy; Auto picks the threaded engine when it can (see
  /// DispatchMode). Switch exists for differential testing and benchmarks.
  DispatchMode Dispatch = DispatchMode::Auto;
};

/// What run() stopped on.
struct Signal {
  enum class Kind {
    /// The program finished normally.
    Finished,
    /// Execution faulted (undefined behavior or out of memory).
    Faulted,
    /// The step budget was exhausted.
    StepLimitReached,
    /// An extern function without a registered handler was called; the
    /// driver must act and then call finishExternalCall().
    ExternalCall,
  };

  Kind SignalKind = Kind::Finished;
  Fault FaultInfo = Fault::undefined("");            // Faulted
  std::string Callee;                                // ExternalCall
  std::vector<Value> Args;                           // ExternalCall
};

/// The small-step machine.
class Machine {
public:
  /// Creates a machine over \p Prog (which must outlive the machine and be
  /// type checked under the Static discipline) using \p Mem. Compiles the
  /// program privately; prefer the module overload when executing the same
  /// program repeatedly.
  Machine(const Program &Prog, std::unique_ptr<Memory> Mem,
          InterpConfig Config);

  /// Creates a machine over an already-compiled \p Module (whose source
  /// Program must outlive the machine). The module is shared: any number of
  /// concurrent machines may execute it.
  Machine(std::shared_ptr<const qir::QirModule> Module,
          std::unique_ptr<Memory> Mem, InterpConfig Config);
  ~Machine();

  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  /// Reset-and-reuse: returns the machine to its just-constructed state
  /// over \p Module and \p Config, keeping the Memory instance and the
  /// capacity of all run-state vectors. The memory's *contents* are not
  /// touched — a caller reusing a machine must first reset the model
  /// through its typed reset() (see ExecState in semantics/Runner.h),
  /// which is what makes a reused machine observationally identical to a
  /// freshly constructed one.
  void reset(std::shared_ptr<const qir::QirModule> Module,
             InterpConfig Config);

  /// Allocates global blocks. Must be called once, before start().
  Outcome<Unit> setupGlobals();

  /// Pushes the entry frame for \p Entry with arguments \p Args.
  Outcome<Unit> start(const std::string &Entry, std::vector<Value> Args);

  /// Registers \p Handler for calls to extern function \p Name; such calls
  /// are then resolved inside run() instead of surfacing as signals.
  void setExternalHandler(const std::string &Name, ExternalHandler Handler);

  /// Runs until completion, fault, fuel exhaustion, or an unhandled extern
  /// call.
  Signal run();

  /// Resumes after the driver handled an ExternalCall signal.
  Signal finishExternalCall();

  /// The behavior of the execution as observed so far; meaningful once
  /// run() returned Finished, Faulted, or StepLimitReached.
  Behavior behavior() const;

  Memory &memory() { return *Mem; }
  const Memory &memory() const { return *Mem; }
  const Program &program() const { return *Module->Source; }
  const qir::QirModule &module() const { return *Module; }
  const std::vector<Event> &events() const { return Events; }
  uint64_t stepsUsed() const { return Steps; }

  /// True when the last run() stopped because Config.WallTimeoutMs elapsed.
  /// The behavior is still Kind::StepLimit — a timeout observes the same
  /// partial event prefix as fuel exhaustion — this only records the cause.
  bool timedOut() const { return TimedOut; }

  /// Translation-cache and fusion telemetry for the runs since the last
  /// reset(). All-zero when every run dispatched through the switch loop.
  /// The cache itself outlives reset(), so a reused machine's later runs
  /// report cache hits with no translations — accumulate() across runs
  /// keeps the totals meaningful.
  const qir::DispatchStats &dispatchStats() const { return DStats; }

  /// The pointer value of global \p Name; setupGlobals() must have run.
  Value globalValue(const std::string &Name) const;

  /// Reads a variable of the innermost frame; test/checker convenience.
  std::optional<Value> readLocal(const std::string &Name) const;

  /// Appends an output event; lets external handlers (contexts) perform
  /// observable I/O.
  void emitOutput(Word V) { Events.push_back(Event::output(V)); }

private:
  /// One activation record: a program counter into the compiled function
  /// and the base offsets of this frame's spans in the machine's slot and
  /// hidden-bit arenas. The spans themselves live in SlotArena /
  /// HiddenArena — a frame push is two resize()s of already-warm vectors,
  /// not two allocations.
  struct Frame {
    const qir::QFunction *Fn = nullptr;
    uint32_t PC = 0;
    /// First slot: SlotArena[SlotBase + S] for S in [0, Fn->NumSlots).
    size_t SlotBase = 0;
    /// First hidden-init bit (index: Slot - NumDeclaredSlots). Reading an
    /// uninitialized hidden slot reproduces the walker's
    /// failed-environment-lookup fault.
    size_t HiddenBase = 0;
    /// Threaded engine only: the caller's linked post-call resume point,
    /// set at the call site so a Ret re-enters the caller's decoded code
    /// without a cache lookup. Null for frames pushed outside the threaded
    /// loop (then PC drives a plain dispatch), and nulled wholesale when
    /// the translation cache invalidates.
    const qir::DInstr *ResumeIP = nullptr;
  };

  /// The wall-clock watchdog polls the clock once per this many statements
  /// — a power of two so the poll test is one AND on the step counter.
  /// Both dispatch loops use the same stride, so a timeout trips at the
  /// same statement index whichever loop is running.
  static constexpr uint64_t WatchdogStride = 4096;

  /// Auto dispatch falls back to the switch loop when fewer than this many
  /// fuel steps remain: near-exhaustion runs are cheap by definition, and
  /// taking them through the loop that has always owned the cutoff keeps
  /// the budget edge cases on one battle-tested path. (The threaded gates
  /// replicate the cutoff checks exactly, so this margin is belt and
  /// braces, not a correctness requirement.)
  static constexpr uint64_t ThreadedStepMargin = 2 * WatchdogStride;

  Outcome<Value> evalBinary(BinaryOp Op, const Value &L, const Value &R);

  /// Executes one instruction; returns true to continue, false when a
  /// signal in PendingSignal must surface.
  bool exec(const qir::QInstr &I);

  /// Routes a fault into PendingSignal; always returns false.
  bool fault(Fault F);

  /// Pushes a call frame for compiled function \p Fn. \p Args may point
  /// into the eval stack: the arguments are copied into the slot arena
  /// before the stack's headroom reservation can reallocate it.
  void pushFrame(const qir::QFunction &Fn, const Value *Args, size_t NumArgs);

  /// Pops the innermost frame, releasing its arena spans.
  void popFrame();

  /// Writes \p V to \p Slot of the innermost frame, marking hidden slots
  /// initialized.
  void setSlot(uint32_t Slot, Value V);

  /// Initial value for a variable of type \p Ty under the current model.
  Value initialValue(Type Ty) const;

  /// The portable switch-dispatch execution loop (historically the only
  /// one); every observer hook lives here.
  Signal runSwitch();

  /// True when Auto dispatch may use the threaded engine for this run (no
  /// observers, no trace sink, no fault-injection decorator, comfortable
  /// step budget).
  bool wantThreaded() const;

  /// Whether LoadMem performs the Section 6.1 dynamic type check under the
  /// current discipline and model; part of the translation-cache key.
  bool typeChecksActive() const;

#if QCM_THREADED_DISPATCH_ACTIVE
  /// The direct-threaded (computed-goto) execution loop; see
  /// InterpThreaded.cpp. Requires wantThreaded().
  Signal runThreaded();
#endif

  std::shared_ptr<const qir::QirModule> Module;
  std::unique_ptr<Memory> Mem;
  InterpConfig Config;
  /// Latched Config.OnInstr presence (hoisted out of the execution loop).
  bool HasObserver = false;
  /// Initial value of a pointer-typed variable under the current model
  /// (Value::null(), or integer 0 when values are fully concrete); cached
  /// so frame pushes skip the model-descriptor lookup.
  Value PtrInit;

  std::vector<Frame> Frames;
  /// Frame-slot arena: each frame owns the span
  /// [SlotBase, SlotBase + Fn->NumSlots). One flat allocation instead of a
  /// per-call vector is what makes call-heavy programs cheap.
  std::vector<Value> SlotArena;
  /// Hidden-slot initialization bits, same arena discipline (byte per slot;
  /// vector<bool> would bit-pack but costs a read-modify-write per store).
  std::vector<uint8_t> HiddenArena;
  /// Eval stack as a flat buffer: Stack.size() is reserved headroom (the
  /// sum of pushed frames' MaxEvalDepth, maintained by pushFrame) and Top
  /// is the live depth — both dispatch loops push and pop through Top with
  /// no per-push capacity checks, and Stack.size() never shrinks mid-run.
  std::vector<Value> Stack;
  size_t Top = 0;
  std::vector<Value> GlobalVals;
  std::map<std::string, ExternalHandler> Handlers;
  std::vector<Event> Events;
  size_t InputCursor = 0;
  uint64_t Steps = 0;

  bool Started = false;
  bool GlobalsReady = false;
  std::optional<Signal> PendingSignal;
  std::optional<Fault> FinalFault;
  bool Finished = false;
  bool HitStepLimit = false;

  /// Watchdog state: the deadline is computed on the first run() after
  /// construction/reset (not at configuration time, so queued work does not
  /// eat into an item's budget) and polled every WatchdogStride statements.
  bool TimedOut = false;
  bool DeadlineArmed = false;
  std::chrono::steady_clock::time_point Deadline;

  /// Decoded-block cache for the threaded engine. Deliberately NOT cleared
  /// by reset(): ensure() revalidates it against the (module, discipline,
  /// model) key, so translations survive the reset-and-reuse protocol and
  /// later grid items run entirely off cache hits.
  qir::TranslationCache TCache;
  /// Telemetry for the runs since the last reset() (reset() zeroes it, the
  /// cache persists — so per-run deltas need no subtraction).
  qir::DispatchStats DStats;
};

// Defined in the header so both dispatch loops inline the frame push/pop
// into their call sites: on call-heavy programs these two run once per
// Call/Ret and an out-of-line call plus un-inlined vector bookkeeping is a
// measurable slice of the per-call budget.

inline void Machine::pushFrame(const qir::QFunction &Fn, const Value *Args,
                               size_t NumArgs) {
  Frame F;
  F.Fn = &Fn;
  F.SlotBase = SlotArena.size();
  F.HiddenBase = HiddenArena.size();
  // Growing the arena value-initializes the new span: integer 0, which is
  // exactly the initial value of int-typed, hidden, and (under a fully
  // concrete value domain) pointer-typed slots. Only logical-NULL pointer
  // slots need a second touch.
  SlotArena.resize(F.SlotBase + Fn.NumSlots);
  HiddenArena.resize(F.HiddenBase + (Fn.NumSlots - Fn.NumDeclaredSlots));
  Value *Slots = SlotArena.data() + F.SlotBase;
  if (!PtrInit.isInt())
    for (uint32_t S : Fn.PtrSlots)
      Slots[S] = PtrInit;
  // Descending so that on a repeated parameter name the first binding wins,
  // like the walker's Env.emplace. Args may alias the eval stack, so this
  // copy happens before the headroom resize below can reallocate it.
  (void)NumArgs;
  assert(NumArgs == Fn.ParamSlots.size() && "argument count mismatch");
  for (size_t Idx = Fn.ParamSlots.size(); Idx-- > 0;)
    Slots[Fn.ParamSlots[Idx]] = Args[Idx];
  if (Stack.size() < Top + Fn.MaxEvalDepth)
    Stack.resize(Top + Fn.MaxEvalDepth);
  Frames.push_back(F);
}

inline void Machine::popFrame() {
  const Frame &F = Frames.back();
  SlotArena.resize(F.SlotBase);
  HiddenArena.resize(F.HiddenBase);
  Frames.pop_back();
}

} // namespace qcm

#endif // QCM_SEMANTICS_INTERP_H
