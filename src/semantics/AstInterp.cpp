//===- semantics/AstInterp.cpp --------------------------------------------===//
//
// The pre-QIR interpreter, unchanged except for the removal of external
// handlers and test-only accessors. Keep this in lockstep with the
// semantics described in docs/IR.md; fuzz_test cross-checks it against the
// QIR engine on every run.
//
//===----------------------------------------------------------------------===//

#include "semantics/AstInterp.h"
#include "memory/ModelRegistry.h"

#include <cassert>

using namespace qcm;

/// One activation record.
struct AstMachine::Frame {
  const FunctionDecl *Fn = nullptr;
  std::map<std::string, Value> Env;
  /// LIFO work list of instructions still to execute in this frame.
  std::vector<const Instr *> Work;
};

AstMachine::AstMachine(const Program &Prog, std::unique_ptr<Memory> Mem,
                       InterpConfig Config)
    : Prog(Prog), Mem(std::move(Mem)), Config(Config) {
  assert(this->Mem && "machine requires a memory");
  this->Mem->trace().bindStepCounter(&Steps);
}

AstMachine::~AstMachine() = default;

Value AstMachine::initialValue(Type Ty) const {
  if (Ty == Type::Int)
    return Value::makeInt(0);
  if (modelDescriptor(Mem->kind()).ValuesFullyConcrete)
    return Value::makeInt(0);
  return Value::null();
}

Outcome<Unit> AstMachine::setupGlobals() {
  assert(!GlobalsReady && "globals already set up");
  for (const GlobalDecl &G : Prog.Globals) {
    Outcome<Value> P = Mem->allocate(G.SizeWords);
    if (!P)
      return P.propagate<Unit>();
    Globals.emplace(G.Name, P.value());
  }
  GlobalsReady = true;
  return Outcome<Unit>::success(Unit{});
}

Outcome<Unit> AstMachine::start(const std::string &Entry,
                                std::vector<Value> Args) {
  assert(GlobalsReady && "setupGlobals() must run before start()");
  assert(!Started && "machine already started");
  const FunctionDecl *Fn = Prog.findFunction(Entry);
  if (!Fn)
    return Outcome<Unit>::undefined("entry function '" + Entry +
                                    "' is not declared");
  if (Fn->isExtern())
    return Outcome<Unit>::undefined("entry function '" + Entry +
                                    "' is extern");
  if (Fn->Params.size() != Args.size())
    return Outcome<Unit>::undefined("entry function '" + Entry +
                                    "' called with wrong argument count");
  pushFrame(*Fn, std::move(Args));
  Started = true;
  return Outcome<Unit>::success(Unit{});
}

void AstMachine::pushFrame(const FunctionDecl &Fn, std::vector<Value> Args) {
  Frame F;
  F.Fn = &Fn;
  for (size_t Idx = 0; Idx < Fn.Params.size(); ++Idx)
    F.Env.emplace(Fn.Params[Idx].Name, Args[Idx]);
  for (const VarDecl &L : Fn.Locals)
    F.Env.emplace(L.Name, initialValue(L.Ty));
  F.Work.push_back(Fn.Body.get());
  Frames.push_back(std::move(F));
}

Outcome<Value> AstMachine::evalExp(const Exp &E, const Frame &F) {
  switch (E.ExpKind) {
  case Exp::Kind::IntLit:
    return Outcome<Value>::success(Value::makeInt(E.IntValue));
  case Exp::Kind::Var: {
    auto It = F.Env.find(E.Name);
    if (It == F.Env.end())
      return Outcome<Value>::undefined("read of undeclared variable '" +
                                       E.Name + "'");
    return Outcome<Value>::success(It->second);
  }
  case Exp::Kind::Global: {
    auto It = Globals.find(E.Name);
    if (It == Globals.end())
      return Outcome<Value>::undefined("read of undeclared global '" +
                                       E.Name + "'");
    return Outcome<Value>::success(It->second);
  }
  case Exp::Kind::Binary: {
    Outcome<Value> L = evalExp(*E.Lhs, F);
    if (!L)
      return L;
    Outcome<Value> R = evalExp(*E.Rhs, F);
    if (!R)
      return R;
    return evalBinary(E.Op, L.value(), R.value());
  }
  }
  return Outcome<Value>::undefined("malformed expression");
}

Outcome<Value> AstMachine::evalBinary(BinaryOp Op, const Value &L,
                                      const Value &R) {
  if (L.isInt() && R.isInt()) {
    Word A = L.intValue(), B = R.intValue();
    switch (Op) {
    case BinaryOp::Add:
      return Outcome<Value>::success(Value::makeInt(wrapAdd(A, B)));
    case BinaryOp::Sub:
      return Outcome<Value>::success(Value::makeInt(wrapSub(A, B)));
    case BinaryOp::Mul:
      return Outcome<Value>::success(Value::makeInt(wrapMul(A, B)));
    case BinaryOp::And:
      return Outcome<Value>::success(Value::makeInt(A & B));
    case BinaryOp::Eq:
      return Outcome<Value>::success(Value::makeInt(A == B ? 1 : 0));
    }
  }

  if (L.isPtr() && R.isInt()) {
    const Ptr &P = L.ptr();
    Word A = R.intValue();
    switch (Op) {
    case BinaryOp::Add:
      return Outcome<Value>::success(
          Value::makePtr(P.Block, wrapAdd(P.Offset, A)));
    case BinaryOp::Sub:
      return Outcome<Value>::success(
          Value::makePtr(P.Block, wrapSub(P.Offset, A)));
    case BinaryOp::Eq:
      if (A == 0 && Mem->isValidAddress(P))
        return Outcome<Value>::success(Value::makeInt(0));
      return Outcome<Value>::undefined(
          "equality test between an address and a nonzero integer");
    case BinaryOp::Mul:
    case BinaryOp::And:
      return Outcome<Value>::undefined(
          "arithmetic '" + binaryOpSpelling(Op) + "' on a logical address");
    }
  }

  if (L.isInt() && R.isPtr()) {
    Word A = L.intValue();
    const Ptr &P = R.ptr();
    switch (Op) {
    case BinaryOp::Add:
      return Outcome<Value>::success(
          Value::makePtr(P.Block, wrapAdd(A, P.Offset)));
    case BinaryOp::Eq:
      if (A == 0 && Mem->isValidAddress(P))
        return Outcome<Value>::success(Value::makeInt(0));
      return Outcome<Value>::undefined(
          "equality test between an integer and an address");
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::And:
      return Outcome<Value>::undefined(
          "arithmetic '" + binaryOpSpelling(Op) + "' on a logical address");
    }
  }

  const Ptr &P1 = L.ptr();
  const Ptr &P2 = R.ptr();
  switch (Op) {
  case BinaryOp::Sub:
    if (P1.Block == P2.Block)
      return Outcome<Value>::success(
          Value::makeInt(wrapSub(P1.Offset, P2.Offset)));
    return Outcome<Value>::undefined(
        "subtraction of addresses in different blocks");
  case BinaryOp::Eq:
    if (P1.Block == P2.Block)
      return Outcome<Value>::success(
          Value::makeInt(P1.Offset == P2.Offset ? 1 : 0));
    if (Mem->isValidAddress(P1) && Mem->isValidAddress(P2))
      return Outcome<Value>::success(Value::makeInt(0));
    return Outcome<Value>::undefined(
        "equality test involving an invalid address");
  case BinaryOp::Add:
  case BinaryOp::Mul:
  case BinaryOp::And:
    return Outcome<Value>::undefined(
        "arithmetic '" + binaryOpSpelling(Op) + "' on two logical addresses");
  }
  return Outcome<Value>::undefined("malformed binary operation");
}

Outcome<std::optional<Value>> AstMachine::evalRExp(const RExp &R, Frame &F) {
  using OV = std::optional<Value>;
  switch (R.RExpKind) {
  case RExp::Kind::Pure: {
    Outcome<Value> V = evalExp(*R.Arg, F);
    if (!V)
      return V.propagate<OV>();
    return Outcome<OV>::success(V.value());
  }
  case RExp::Kind::Malloc: {
    Outcome<Value> Size = evalExp(*R.Arg, F);
    if (!Size)
      return Size.propagate<OV>();
    if (!Size.value().isInt())
      return Outcome<OV>::undefined("malloc size is a logical address");
    Outcome<Value> P = Mem->allocate(Size.value().intValue());
    if (!P)
      return P.propagate<OV>();
    return Outcome<OV>::success(P.value());
  }
  case RExp::Kind::Free: {
    Outcome<Value> P = evalExp(*R.Arg, F);
    if (!P)
      return P.propagate<OV>();
    Outcome<Unit> Freed = Mem->deallocate(P.value());
    if (!Freed)
      return Freed.propagate<OV>();
    return Outcome<OV>::success(std::nullopt);
  }
  case RExp::Kind::Cast: {
    Outcome<Value> V = evalExp(*R.Arg, F);
    if (!V)
      return V.propagate<OV>();
    Outcome<Value> Cast = R.CastTo == Type::Int
                              ? Mem->castPtrToInt(V.value())
                              : Mem->castIntToPtr(V.value());
    if (!Cast)
      return Cast.propagate<OV>();
    return Outcome<OV>::success(Cast.value());
  }
  case RExp::Kind::Input: {
    Word V = InputCursor < Config.InputTape.size()
                 ? Config.InputTape[InputCursor++]
                 : 0;
    Events.push_back(Event::input(V));
    return Outcome<OV>::success(Value::makeInt(V));
  }
  case RExp::Kind::Output: {
    Outcome<Value> V = evalExp(*R.Arg, F);
    if (!V)
      return V.propagate<OV>();
    if (!V.value().isInt())
      return Outcome<OV>::undefined("output of a logical address");
    Events.push_back(Event::output(V.value().intValue()));
    return Outcome<OV>::success(std::nullopt);
  }
  }
  return Outcome<OV>::undefined("malformed right-hand side");
}

bool AstMachine::fault(Fault F) {
  Mem->trace().noteFault(F);
  FinalFault = F;
  Signal S;
  S.SignalKind = Signal::Kind::Faulted;
  S.FaultInfo = std::move(F);
  PendingSignal = std::move(S);
  return false;
}

bool AstMachine::execInstr(const Instr &I) {
  Frame &F = Frames.back();
  switch (I.InstrKind) {
  case Instr::Kind::Seq:
    for (auto It = I.Stmts.rbegin(); It != I.Stmts.rend(); ++It)
      F.Work.push_back(It->get());
    return true;

  case Instr::Kind::If: {
    Outcome<Value> Cond = evalExp(*I.Cond, F);
    if (!Cond)
      return fault(Cond.fault());
    if (!Cond.value().isInt())
      return fault(Fault::undefined("branch on a logical address"));
    if (Cond.value().intValue() != 0)
      F.Work.push_back(I.Then.get());
    else if (I.Else)
      F.Work.push_back(I.Else.get());
    return true;
  }

  case Instr::Kind::While: {
    Outcome<Value> Cond = evalExp(*I.Cond, F);
    if (!Cond)
      return fault(Cond.fault());
    if (!Cond.value().isInt())
      return fault(Fault::undefined("loop on a logical address"));
    if (Cond.value().intValue() != 0) {
      F.Work.push_back(&I);
      F.Work.push_back(I.Body.get());
    }
    return true;
  }

  case Instr::Kind::Call: {
    std::vector<Value> Args;
    Args.reserve(I.Args.size());
    for (const auto &A : I.Args) {
      Outcome<Value> V = evalExp(*A, F);
      if (!V)
        return fault(V.fault());
      Args.push_back(V.value());
    }
    const FunctionDecl *Callee = Prog.findFunction(I.Callee);
    if (!Callee)
      return fault(Fault::undefined("call to undeclared function '" +
                                    I.Callee + "'"));
    if (Callee->Params.size() != Args.size())
      return fault(
          Fault::undefined("call with wrong argument count to '" +
                           I.Callee + "'"));
    if (!Callee->isExtern()) {
      pushFrame(*Callee, std::move(Args));
      return true;
    }
    Signal S;
    S.SignalKind = Signal::Kind::ExternalCall;
    S.Callee = I.Callee;
    S.Args = std::move(Args);
    PendingSignal = std::move(S);
    return false;
  }

  case Instr::Kind::Assign: {
    Outcome<std::optional<Value>> V = evalRExp(*I.Rhs, F);
    if (!V)
      return fault(V.fault());
    if (I.Var.empty())
      return true;
    if (!V.value())
      return fault(Fault::undefined("assignment from a value-less operation"));
    F.Env[I.Var] = *V.value();
    return true;
  }

  case Instr::Kind::Load: {
    Outcome<Value> Addr = evalExp(*I.Addr, F);
    if (!Addr)
      return fault(Addr.fault());
    Outcome<Value> V = Mem->load(Addr.value());
    if (!V)
      return fault(V.fault());
    if (Config.Discipline == TypeDiscipline::Static &&
        Mem->kind() != ModelKind::Concrete) {
      const VarDecl *D = F.Fn->findVariable(I.Var);
      if (!D)
        return fault(Fault::undefined("load into undeclared variable '" +
                                      I.Var + "'"));
      if (D->Ty == Type::Int && V.value().isPtr())
        return fault(Fault::undefined(
            "load of a logical address into int variable '" + I.Var + "'"));
      if (D->Ty == Type::Ptr && V.value().isInt())
        return fault(Fault::undefined(
            "load of an integer into ptr variable '" + I.Var + "'"));
    }
    F.Env[I.Var] = V.value();
    return true;
  }

  case Instr::Kind::Store: {
    Outcome<Value> Addr = evalExp(*I.Addr, F);
    if (!Addr)
      return fault(Addr.fault());
    Outcome<Value> V = evalExp(*I.StoreVal, F);
    if (!V)
      return fault(V.fault());
    Outcome<Unit> Stored = Mem->store(Addr.value(), V.value());
    if (!Stored)
      return fault(Stored.fault());
    return true;
  }
  }
  return fault(Fault::undefined("malformed instruction"));
}

bool AstMachine::stepOnce() {
  Frame &F = Frames.back();
  if (F.Work.empty()) {
    Frames.pop_back();
    return true;
  }
  const Instr *I = F.Work.back();
  F.Work.pop_back();
  if (Config.OnInstr && I->InstrKind != Instr::Kind::Seq)
    Config.OnInstr(*I, static_cast<unsigned>(Frames.size()));
  return execInstr(*I);
}

Signal AstMachine::run() {
  assert(Started && "run() before start()");
  if (PendingSignal)
    return *PendingSignal;
  while (true) {
    if (Frames.empty()) {
      Finished = true;
      Signal S;
      S.SignalKind = Signal::Kind::Finished;
      PendingSignal = S;
      return *PendingSignal;
    }
    if (Steps >= Config.StepLimit) {
      HitStepLimit = true;
      Signal S;
      S.SignalKind = Signal::Kind::StepLimitReached;
      PendingSignal = S;
      return *PendingSignal;
    }
    ++Steps;
    if (!stepOnce())
      return *PendingSignal;
  }
}

Signal AstMachine::finishExternalCall() {
  assert(PendingSignal &&
         PendingSignal->SignalKind == Signal::Kind::ExternalCall &&
         "finishExternalCall() without a pending external call");
  PendingSignal.reset();
  return run();
}

Behavior AstMachine::behavior() const {
  if (FinalFault) {
    if (FinalFault->isUndefined())
      return Behavior::undefined(Events, FinalFault->Reason);
    return Behavior::outOfMemory(Events, FinalFault->Reason);
  }
  if (Finished)
    return Behavior::terminated(Events);
  return Behavior::stepLimit(Events);
}

namespace {

Outcome<Value> materializeAstArg(const ArgSpec &Spec, Memory &Mem) {
  if (Spec.ArgKind == ArgSpec::Kind::Int)
    return Outcome<Value>::success(Value::makeInt(Spec.IntValue));
  Outcome<Value> P = Mem.allocate(Spec.Size);
  if (!P)
    return P;
  for (size_t Idx = 0; Idx < Spec.Init.size(); ++Idx) {
    Value Slot = P.value().isPtr()
                     ? Value::makePtr(P.value().ptr().Block,
                                      P.value().ptr().Offset +
                                          static_cast<Word>(Idx))
                     : Value::makeInt(P.value().intValue() +
                                      static_cast<Word>(Idx));
    Outcome<Unit> Stored = Mem.store(Slot, Value::makeInt(Spec.Init[Idx]));
    if (!Stored)
      return Stored.propagate<Value>();
  }
  return P;
}

} // namespace

RunResult qcm::runAstProgram(const Program &Prog, const RunConfig &Config) {
  AstMachine M(Prog, makeMemory(Config), Config.Interp);
  if (Config.TraceSink)
    M.memory().trace().setSink(Config.TraceSink);

  RunResult Result;
  auto FinishWithFault = [&](const Fault &F) {
    M.memory().trace().noteFault(F);
    Result.Behav = F.isUndefined()
                       ? Behavior::undefined(M.events(), F.Reason)
                       : Behavior::outOfMemory(M.events(), F.Reason);
    Result.Steps = M.stepsUsed();
    Result.ConsistencyError = M.memory().checkConsistency();
    Result.Stats = M.memory().trace().stats();
    return Result;
  };

  if (Outcome<Unit> G = M.setupGlobals(); !G)
    return FinishWithFault(G.fault());

  std::vector<Value> Args;
  for (const ArgSpec &Spec : Config.Args) {
    Outcome<Value> V = materializeAstArg(Spec, M.memory());
    if (!V)
      return FinishWithFault(V.fault());
    Args.push_back(V.value());
  }

  if (Outcome<Unit> S = M.start(Config.Entry, std::move(Args)); !S)
    return FinishWithFault(S.fault());

  Signal Sig = M.run();
  while (Sig.SignalKind == Signal::Kind::ExternalCall)
    Sig = M.finishExternalCall();

  Result.Behav = M.behavior();
  Result.Steps = M.stepsUsed();
  Result.ConsistencyError = M.memory().checkConsistency();
  Result.Stats = M.memory().trace().stats();
  return Result;
}
